package deprecatedcall_test

import (
	"testing"

	"github.com/cpskit/atypical/internal/analysis/analysistest"
	"github.com/cpskit/atypical/internal/analysis/deprecatedcall"
)

// TestDeprecatedCall drives the consumer fixture and the package-main
// fixture (both convicted) plus the declaring-package fixture and a
// _test.go file (both exempt) in one run.
func TestDeprecatedCall(t *testing.T) {
	diags := analysistest.Run(t, "testdata", deprecatedcall.Analyzer, "calluser", "callmain", "atypical")
	if len(diags) != 4 {
		t.Fatalf("got %d diagnostics, want 4: %v", len(diags), diags)
	}
}
