package deprecatedcall_test

import (
	"testing"

	"github.com/cpskit/atypical/internal/analysis/analysistest"
	"github.com/cpskit/atypical/internal/analysis/deprecatedcall"
)

// TestDeprecatedCall drives the consumer fixture and the package-main
// fixture (both convicted) plus the declaring-package fixture and a
// _test.go file (both exempt) in one run. The production table matches the
// facade by exact import path, which the fixture's GOPATH-style "atypical"
// path is not, so the run installs suffix-matched fixture entries — the
// mode PkgSuffix exists for.
func TestDeprecatedCall(t *testing.T) {
	saved := deprecatedcall.Deprecated
	deprecatedcall.Deprecated = append(append([]deprecatedcall.Entry(nil), saved...),
		deprecatedcall.Entry{PkgSuffix: "atypical", Type: "System", Method: "QueryCity",
			Advice: "migrate to Run(ctx, QueryRequest{...})"},
		deprecatedcall.Entry{PkgSuffix: "atypical", Type: "System", Method: "QueryCityCtx",
			Advice: "migrate to Run(ctx, QueryRequest{...})"},
	)
	defer func() { deprecatedcall.Deprecated = saved }()

	diags := analysistest.Run(t, "testdata", deprecatedcall.Analyzer, "calluser", "callmain", "atypical")
	if len(diags) != 4 {
		t.Fatalf("got %d diagnostics, want 4: %v", len(diags), diags)
	}
}

// TestProductionTableIsExactPath pins the fence's reason for being: every
// production entry names the facade by full import path, so a vendored or
// unrelated package that happens to be called "atypical" is neither fenced
// nor granted the declaring-package grace zone.
func TestProductionTableIsExactPath(t *testing.T) {
	for _, e := range deprecatedcall.Deprecated {
		if e.Path != "github.com/cpskit/atypical" {
			t.Errorf("entry %s.%s matches by %q/%q, want exact facade path",
				e.Type, e.Method, e.Path, e.PkgSuffix)
		}
	}
}
