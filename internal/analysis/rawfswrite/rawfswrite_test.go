package rawfswrite_test

import (
	"testing"

	"github.com/cpskit/atypical/internal/analysis/analysistest"
	"github.com/cpskit/atypical/internal/analysis/rawfswrite"
)

func TestRawFSWrite(t *testing.T) {
	diags := analysistest.Run(t, "testdata", rawfswrite.Analyzer, "rawfswrite")
	if len(diags) == 0 {
		t.Fatal("expected at least one true-positive diagnostic on the fixture")
	}
}
