// Fixture for the rawfswrite analyzer: direct os write calls are flagged,
// reads and non-os lookalikes are not.
package rawfswrite

import (
	"os"
)

func bad(path string, data []byte) {
	_, _ = os.Create(path)                             // want `direct os\.Create bypasses the crash-safe write protocol`
	_ = os.WriteFile(path, data, 0o644)                // want `direct os\.WriteFile bypasses the crash-safe write protocol`
	_ = os.Rename(path, path+".new")                   // want `direct os\.Rename bypasses the crash-safe write protocol`
	_, _ = os.OpenFile(path, os.O_RDWR, 0o644)         // want `direct os\.OpenFile bypasses the crash-safe write protocol`
	f, _ := os.OpenFile(path, os.O_WRONLY, 0o644)      // want `direct os\.OpenFile bypasses the crash-safe write protocol`
	_ = f
}

// lookalike has the flagged names on a different receiver: not package os.
type lookalike struct{}

func (lookalike) Create(string) error            { return nil }
func (lookalike) WriteFile(string, []byte) error { return nil }

func good(path string) {
	_, _ = os.Open(path)     // reads are fine
	_, _ = os.ReadFile(path) // reads are fine
	_, _ = os.Stat(path)
	_ = os.Remove(path) // cleanup is not a publish
	var lk lookalike
	_ = lk.Create(path)
	_ = lk.WriteFile(path, nil)
}
