// Package rawfswrite defines an analyzer enforcing the crash-safety seam:
// production code must not write to the filesystem through package os
// directly, because only internal/faultfs implements the atomic
// temp-file → fsync → rename → directory-fsync protocol (and only its FS
// seam lets the fault-injection harness exercise crash points).
//
// Flagged calls: os.Create, os.OpenFile, os.WriteFile and os.Rename.
// Exempt: the internal/faultfs package itself (the one place allowed to
// touch os) and _test.go files, which legitimately build fixtures with raw
// writes. A deliberate exception elsewhere needs a written justification
// via "//atyplint:ignore rawfswrite reason".
package rawfswrite

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/cpskit/atypical/internal/analysis/framework"
)

// Analyzer flags direct os write calls outside internal/faultfs.
var Analyzer = &framework.Analyzer{
	Name: "rawfswrite",
	Doc: "flag direct os.Create/os.OpenFile/os.WriteFile/os.Rename outside " +
		"internal/faultfs (writes must go through the crash-safe faultfs seam)",
	Run: run,
}

// flagged is the set of os functions that create or publish files.
var flagged = map[string]bool{
	"Create":    true,
	"OpenFile":  true,
	"WriteFile": true,
	"Rename":    true,
}

func run(pass *framework.Pass) (any, error) {
	if strings.HasSuffix(pass.Pkg.Path(), "internal/faultfs") {
		return nil, nil // the seam itself must touch os
	}
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue // tests may build fixtures with raw writes
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.ObjectOf(sel.Sel).(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "os" || !flagged[fn.Name()] {
				return true
			}
			pass.Reportf(call.Pos(),
				"direct os.%s bypasses the crash-safe write protocol; use the "+
					"internal/faultfs seam (WriteFileAtomic/CreateAtomic or an FS value)",
				fn.Name())
			return true
		})
	}
	return nil, nil
}
