// Fixture for the lockcheck analyzer: lock-containing values must move by
// pointer, and every Lock acquired in a function must be released in it.
package lockcheck

import "sync"

type Guarded struct {
	mu sync.Mutex
	n  int
}

func byValueParam(g Guarded) int { // want `parameter passes lock by value`
	return g.n
}

func (g Guarded) valueReceiver() int { // want `method receiver passes lock by value`
	return g.n
}

func copyAssign(g *Guarded) int {
	cp := *g // want `assignment copies lock value`
	return cp.n
}

func rangeCopy(gs []Guarded) int {
	total := 0
	for _, g := range gs { // want `range value copies lock value`
		total += g.n
	}
	return total
}

func missingUnlock(g *Guarded) int {
	g.mu.Lock() // want `g.mu.Lock\(\) is never released`
	return g.n
}

func missingRUnlock(mu *sync.RWMutex) {
	mu.RLock() // want `mu.RLock\(\) is never released`
}

func deferredUnlock(g *Guarded) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

func unlockInDeferredClosure(mu *sync.RWMutex, f func()) {
	mu.RLock()
	defer func() { mu.RUnlock() }()
	f()
}

func directUnlock(g *Guarded) {
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
}

func pointersAreFine(g *Guarded, mu *sync.Mutex) *Guarded {
	return g
}

func rangeByIndex(gs []Guarded) int {
	total := 0
	for i := range gs { // indexing does not copy the lock
		total += gs[i].n
	}
	return total
}
