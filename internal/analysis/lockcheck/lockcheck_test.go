package lockcheck_test

import (
	"testing"

	"github.com/cpskit/atypical/internal/analysis/analysistest"
	"github.com/cpskit/atypical/internal/analysis/lockcheck"
)

func TestLockcheck(t *testing.T) {
	diags := analysistest.Run(t, "testdata", lockcheck.Analyzer, "lockcheck")
	if len(diags) == 0 {
		t.Fatal("expected at least one true-positive diagnostic on the fixture")
	}
}
