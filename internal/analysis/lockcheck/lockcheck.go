// Package lockcheck defines an analyzer preparing the codebase for the
// parallel query executor: it flags lock values that are copied and Lock
// acquisitions that a function never releases.
//
// Two rules:
//
//  1. copy: a struct containing a sync primitive (sync.Mutex, RWMutex,
//     WaitGroup, Once, Cond, Pool, Map, or any sync/atomic type) must not be
//     copied — value receivers, by-value parameters, plain value
//     assignments and by-value range variables are reported. This is a
//     stdlib-only subset of vet's copylocks, run here so `atyplint` alone
//     gates a PR.
//
//  2. release: a function that calls mu.Lock() or mu.RLock() on a sync
//     mutex must contain a matching mu.Unlock()/mu.RUnlock() (deferred or
//     direct) on the same receiver expression. Helpers that intentionally
//     return holding the lock can annotate the call site with
//     //atyplint:ignore lockcheck.
package lockcheck

import (
	"go/ast"
	"go/types"

	"github.com/cpskit/atypical/internal/analysis/framework"
)

// Analyzer flags copied locks and unreleased lock acquisitions.
var Analyzer = &framework.Analyzer{
	Name: "lockcheck",
	Doc: "flag copies of structs containing sync primitives and Lock calls " +
		"with no matching Unlock in the same function",
	Run: run,
}

func run(pass *framework.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.FuncDecl:
				checkSignature(pass, node.Recv, node.Type)
				if node.Body != nil {
					checkRelease(pass, node.Body)
				}
			case *ast.FuncLit:
				checkSignature(pass, nil, node.Type)
				checkRelease(pass, node.Body)
			case *ast.AssignStmt:
				checkCopyAssign(pass, node)
			case *ast.RangeStmt:
				checkCopyRange(pass, node)
			}
			return true
		})
	}
	return nil, nil
}

// ---- rule 1: lock copies ----

func checkSignature(pass *framework.Pass, recv *ast.FieldList, ft *ast.FuncType) {
	report := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			t := pass.TypeOf(field.Type)
			if t == nil {
				continue
			}
			if path := lockPath(t, nil); path != "" {
				pass.Reportf(field.Type.Pos(),
					"%s passes lock by value: %s contains %s; use a pointer",
					what, types.TypeString(t, types.RelativeTo(pass.Pkg)), path)
			}
		}
	}
	report(recv, "method receiver")
	report(ft.Params, "parameter")
	report(ft.Results, "result")
}

func checkCopyAssign(pass *framework.Pass, stmt *ast.AssignStmt) {
	for _, rhs := range stmt.Rhs {
		switch rhs.(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
			// A copy of an existing value. Composite literals and calls
			// construct fresh values and are fine.
		default:
			continue
		}
		t := pass.TypeOf(rhs)
		if t == nil {
			continue
		}
		if path := lockPath(t, nil); path != "" {
			pass.Reportf(rhs.Pos(),
				"assignment copies lock value: %s contains %s; use a pointer",
				types.TypeString(t, types.RelativeTo(pass.Pkg)), path)
		}
	}
}

func checkCopyRange(pass *framework.Pass, rng *ast.RangeStmt) {
	if rng.Value == nil {
		return
	}
	t := pass.TypeOf(rng.Value)
	if t == nil {
		return
	}
	if path := lockPath(t, nil); path != "" {
		pass.Reportf(rng.Value.Pos(),
			"range value copies lock value: %s contains %s; range over indices or pointers",
			types.TypeString(t, types.RelativeTo(pass.Pkg)), path)
	}
}

// lockPath returns a human-readable path to a sync primitive contained in t
// by value ("" when t is copy-safe). seen guards recursive types.
func lockPath(t types.Type, seen map[types.Type]bool) string {
	if seen[t] {
		return ""
	}
	if seen == nil {
		seen = map[types.Type]bool{}
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		if pkg := named.Obj().Pkg(); pkg != nil {
			switch pkg.Path() {
			case "sync":
				switch named.Obj().Name() {
				case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Pool", "Map":
					return "sync." + named.Obj().Name()
				}
			case "sync/atomic":
				if _, isStruct := named.Underlying().(*types.Struct); isStruct {
					return "sync/atomic." + named.Obj().Name()
				}
			}
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if path := lockPath(u.Field(i).Type(), seen); path != "" {
				return u.Field(i).Name() + "." + path
			}
		}
	case *types.Array:
		if path := lockPath(u.Elem(), seen); path != "" {
			return "[...]" + path
		}
	}
	return ""
}

// ---- rule 2: unreleased locks ----

// lockMethods maps an acquire method to its release counterpart.
var lockMethods = map[string]string{
	"Lock":  "Unlock",
	"RLock": "RUnlock",
}

func checkRelease(pass *framework.Pass, body *ast.BlockStmt) {
	type acquire struct {
		call *ast.CallExpr
		recv string
		want string
	}
	var acquires []acquire
	released := map[string]bool{} // recv + "." + method
	syncCall := func(n ast.Node) (*ast.CallExpr, *ast.SelectorExpr, bool) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return nil, nil, false
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !isSyncMethod(pass, sel) {
			return nil, nil, false
		}
		return call, sel, true
	}
	// Acquires count only at this function's own level — a Lock inside a
	// nested func literal is that literal's responsibility (run visits it
	// separately). Releases count anywhere in the body, so the common
	// `defer func() { mu.Unlock() }()` shape satisfies the rule.
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit.Body != body {
			return false
		}
		if call, sel, ok := syncCall(n); ok {
			if want, ok := lockMethods[sel.Sel.Name]; ok {
				acquires = append(acquires, acquire{call: call, recv: exprString(sel.X), want: want})
			}
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		if _, sel, ok := syncCall(n); ok {
			if _, isAcquire := lockMethods[sel.Sel.Name]; !isAcquire {
				released[exprString(sel.X)+"."+sel.Sel.Name] = true
			}
		}
		return true
	})
	for _, a := range acquires {
		if !released[a.recv+"."+a.want] {
			pass.Reportf(a.call.Pos(),
				"%s.%s() is never released in this function; add defer %s.%s()",
				a.recv, lockAcquireName(a.want), a.recv, a.want)
		}
	}
}

func lockAcquireName(release string) string {
	for acq, rel := range lockMethods {
		if rel == release {
			return acq
		}
	}
	return "Lock"
}

// isSyncMethod reports whether sel selects a method defined by package sync
// (Mutex/RWMutex Lock family).
func isSyncMethod(pass *framework.Pass, sel *ast.SelectorExpr) bool {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return false
	}
	fn, ok := s.Obj().(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == "sync"
}

// exprString renders a receiver expression as a comparison key.
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.StarExpr:
		return "*" + exprString(x.X)
	case *ast.ParenExpr:
		return exprString(x.X)
	case *ast.IndexExpr:
		return exprString(x.X) + "[...]"
	case *ast.CallExpr:
		return exprString(x.Fun) + "()"
	}
	return "?"
}
