// Package callgraph builds a per-package static call graph over the typed
// ASTs produced by internal/analysis/load, shared by the interprocedural
// (fact-exporting) analyzers.
//
// The graph is intentionally conservative in the direction each client
// needs:
//
//   - Static calls to declared functions and to methods with a concrete
//     receiver become ordinary edges, including edges into imported
//     packages (whose conclusions analyzers read back as facts).
//   - Function literals do not get nodes of their own: calls inside a
//     FuncLit are attributed to the enclosing declared function. A closure
//     handed to a worker pool is therefore charged to the function that
//     wrote it, which is the attribution that matters for reachability from
//     the determinism roots.
//   - A *reference* to a declared function or method (passing it as a
//     value, assigning it to a variable) also becomes an edge, flagged
//     Ref — whoever takes a function value may call it.
//   - Calls through interface methods are resolved against the method sets
//     of every named type visible to the package (its own scope plus all
//     direct imports); each concrete implementation becomes an edge flagged
//     Iface. Calls through bare function values resolve to nothing and are
//     recorded as DynamicSites.
//
// Edges never point "up" the import DAG — a callee is always in the current
// package or one of its (transitive) imports — which is what lets analyzers
// run packages in dependency order and rely on facts alone for
// cross-package propagation.
package callgraph

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"github.com/cpskit/atypical/internal/analysis/framework"
)

// Edge is one call (or function-value reference) from a node.
type Edge struct {
	Callee *types.Func
	Pos    token.Pos
	// Iface marks an edge added by conservative interface resolution.
	Iface bool
	// Ref marks a function-value reference rather than a direct call.
	Ref bool
}

// Node is one declared function or method of the package under analysis.
type Node struct {
	Obj   *types.Func
	Decl  *ast.FuncDecl
	Edges []Edge
	// DynamicSites are call positions through plain function values, which
	// resolve to no callee. Clients that need soundness against them can
	// treat each as "calls anything".
	DynamicSites []token.Pos
}

// Graph is the call graph of one package.
type Graph struct {
	Nodes map[*types.Func]*Node
	// order preserves declaration order for deterministic iteration.
	order []*Node
}

// ForEach visits nodes in declaration order.
func (g *Graph) ForEach(fn func(*Node)) {
	for _, n := range g.order {
		fn(n)
	}
}

// Lookup returns the node for a function declared in this package, or nil.
func (g *Graph) Lookup(fn *types.Func) *Node { return g.Nodes[fn] }

// Build constructs the call graph for the package of pass.
func Build(pass *framework.Pass) *Graph {
	g := &Graph{Nodes: map[*types.Func]*Node{}}
	b := &builder{pass: pass, ifaceCache: map[*types.Named]map[string][]*types.Func{}}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			node := &Node{Obj: obj, Decl: fd}
			b.walk(node, fd.Body)
			g.Nodes[obj] = node
			g.order = append(g.order, node)
		}
	}
	return g
}

// ShortName renders pkg.Func or (pkg.T).M with bare package names instead
// of full import paths, for human-readable call chains in diagnostics.
func ShortName(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	short := fn.Pkg().Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		star := ""
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			star = "*"
		}
		if named, ok := t.(*types.Named); ok {
			return fmt.Sprintf("(%s%s.%s).%s", star, short, named.Obj().Name(), fn.Name())
		}
	}
	return short + "." + fn.Name()
}

type builder struct {
	pass *framework.Pass
	// ifaceCache memoizes interface-method resolution per interface-defining
	// named type and method name.
	ifaceCache map[*types.Named]map[string][]*types.Func
	// scopeTypes lazily enumerates the named types visible to the package.
	scopeTypes []types.Type
}

// walk collects edges from body into node.
func (b *builder) walk(node *Node, body ast.Node) {
	info := b.pass.TypesInfo
	// callFuns marks expressions in call position so the reference walk can
	// skip them.
	callFuns := map[ast.Expr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fun := ast.Unparen(call.Fun)
		callFuns[fun] = true
		if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
			return true // conversion, not a call
		}
		switch f := fun.(type) {
		case *ast.Ident:
			switch obj := info.Uses[f].(type) {
			case *types.Func:
				node.Edges = append(node.Edges, Edge{Callee: obj, Pos: call.Pos()})
			case *types.Builtin, nil:
				// builtins and type exprs: no edge
			default:
				node.DynamicSites = append(node.DynamicSites, call.Pos())
			}
		case *ast.SelectorExpr:
			callFuns[f.Sel] = true
			if sel, ok := info.Selections[f]; ok && sel.Kind() == types.MethodVal {
				fn, ok := sel.Obj().(*types.Func)
				if !ok {
					break
				}
				if types.IsInterface(sel.Recv()) {
					for _, impl := range b.implementations(sel.Recv(), fn.Name()) {
						node.Edges = append(node.Edges, Edge{Callee: impl, Pos: call.Pos(), Iface: true})
					}
					// The interface method object itself is also recorded:
					// a client may have a fact on the interface method.
					node.Edges = append(node.Edges, Edge{Callee: fn, Pos: call.Pos(), Iface: true})
				} else {
					node.Edges = append(node.Edges, Edge{Callee: fn, Pos: call.Pos()})
				}
				break
			}
			// Qualified call pkg.F or a struct-field func value.
			switch obj := info.Uses[f.Sel].(type) {
			case *types.Func:
				node.Edges = append(node.Edges, Edge{Callee: obj, Pos: call.Pos()})
			default:
				node.DynamicSites = append(node.DynamicSites, call.Pos())
			}
		default:
			// Call of a call result, index expression, func literal called
			// in place, etc. A FuncLit called in place is already attributed
			// via its body; everything else is dynamic.
			if _, isLit := fun.(*ast.FuncLit); !isLit {
				node.DynamicSites = append(node.DynamicSites, call.Pos())
			}
		}
		return true
	})
	// Reference edges: uses of declared functions outside call position.
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || callFuns[id] {
			return true
		}
		if fn, ok := info.Uses[id].(*types.Func); ok {
			node.Edges = append(node.Edges, Edge{Callee: fn, Pos: id.Pos(), Ref: true})
		}
		return true
	})
}

// implementations returns the concrete methods named name of every visible
// named type that implements iface.
func (b *builder) implementations(iface types.Type, name string) []*types.Func {
	in, ok := types.Unalias(iface).(*types.Named)
	var cache map[string][]*types.Func
	if ok {
		cache = b.ifaceCache[in]
		if impls, hit := cache[name]; hit {
			return impls
		}
	}
	it, ok := iface.Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var out []*types.Func
	for _, t := range b.visibleTypes() {
		pt := types.NewPointer(t)
		if !types.Implements(t, it) && !types.Implements(pt, it) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(pt, true, b.pass.Pkg, name)
		if fn, ok := obj.(*types.Func); ok {
			out = append(out, fn)
		}
	}
	if in != nil {
		if cache == nil {
			cache = map[string][]*types.Func{}
			b.ifaceCache[in] = cache
		}
		cache[name] = out
	}
	return out
}

// visibleTypes enumerates the named (non-interface) types declared by the
// package under analysis and by its direct imports.
func (b *builder) visibleTypes() []types.Type {
	if b.scopeTypes != nil {
		return b.scopeTypes
	}
	collect := func(pkg *types.Package) {
		scope := pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			t := tn.Type()
			if types.IsInterface(t) {
				continue
			}
			b.scopeTypes = append(b.scopeTypes, t)
		}
	}
	collect(b.pass.Pkg)
	for _, imp := range b.pass.Pkg.Imports() {
		collect(imp)
	}
	if b.scopeTypes == nil {
		b.scopeTypes = []types.Type{}
	}
	return b.scopeTypes
}
