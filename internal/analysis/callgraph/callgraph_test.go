package callgraph

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"github.com/cpskit/atypical/internal/analysis/framework"
)

func buildSrc(t *testing.T, src string) (*framework.Pass, *Graph) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := framework.NewInfo()
	conf := types.Config{Importer: importer.Default()}
	pkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	pass := &framework.Pass{Fset: fset, Files: []*ast.File{f}, Pkg: pkg,
		TypesInfo: info, Report: func(framework.Diagnostic) {}}
	return pass, Build(pass)
}

// edges returns the callee full names from fn, split by edge kind.
func edges(t *testing.T, g *Graph, pkg *types.Package, fn string) (static, iface, refs []string) {
	t.Helper()
	obj, _ := pkg.Scope().Lookup(fn).(*types.Func)
	if obj == nil {
		t.Fatalf("no func %s", fn)
	}
	n := g.Lookup(obj)
	if n == nil {
		t.Fatalf("no node for %s", fn)
	}
	for _, e := range n.Edges {
		switch {
		case e.Iface:
			iface = append(iface, e.Callee.FullName())
		case e.Ref:
			refs = append(refs, e.Callee.FullName())
		default:
			static = append(static, e.Callee.FullName())
		}
	}
	return
}

func has(list []string, want string) bool {
	for _, s := range list {
		if s == want {
			return true
		}
	}
	return false
}

func TestStaticAndMethodEdges(t *testing.T) {
	pass, g := buildSrc(t, `package p
import "strings"
type T struct{}
func (t *T) M() {}
func helper() {}
func F(t *T) {
	helper()
	t.M()
	strings.ToUpper("x")
}
`)
	static, _, _ := edges(t, g, pass.Pkg, "F")
	for _, want := range []string{"p.helper", "(*p.T).M", "strings.ToUpper"} {
		if !has(static, want) {
			t.Errorf("missing static edge F -> %s (have %v)", want, static)
		}
	}
}

func TestFuncLitAttributionAndRefs(t *testing.T) {
	pass, g := buildSrc(t, `package p
func leaf() {}
func run(f func()) { f() }
func F() {
	run(func() { leaf() })
	g := leaf
	_ = g
}
`)
	static, _, refs := edges(t, g, pass.Pkg, "F")
	if !has(static, "p.leaf") {
		t.Errorf("closure call should attribute leaf to F; static=%v", static)
	}
	if !has(static, "p.run") {
		t.Errorf("missing edge to run; static=%v", static)
	}
	if !has(refs, "p.leaf") {
		t.Errorf("assigning leaf should add a Ref edge; refs=%v", refs)
	}
	// run calls only its parameter: one dynamic site, no static edges.
	runObj := pass.Pkg.Scope().Lookup("run").(*types.Func)
	n := g.Lookup(runObj)
	if len(n.DynamicSites) != 1 {
		t.Errorf("run should have 1 dynamic site, got %d", len(n.DynamicSites))
	}
}

func TestInterfaceResolution(t *testing.T) {
	pass, g := buildSrc(t, `package p
type I interface{ Do() }
type A struct{}
func (A) Do() {}
type B struct{}
func (*B) Do() {}
func F(i I) { i.Do() }
`)
	_, iface, _ := edges(t, g, pass.Pkg, "F")
	for _, want := range []string{"(p.A).Do", "(*p.B).Do"} {
		if !has(iface, want) {
			t.Errorf("interface call should resolve to %s (have %v)", want, iface)
		}
	}
}

func TestConversionIsNotACall(t *testing.T) {
	pass, g := buildSrc(t, `package p
type Celsius float64
func F(x float64) Celsius { return Celsius(x) }
`)
	static, iface, refs := edges(t, g, pass.Pkg, "F")
	if len(static)+len(iface)+len(refs) != 0 {
		t.Errorf("conversion produced edges: %v %v %v", static, iface, refs)
	}
	n := g.Lookup(pass.Pkg.Scope().Lookup("F").(*types.Func))
	if len(n.DynamicSites) != 0 {
		t.Errorf("conversion produced dynamic sites")
	}
}
