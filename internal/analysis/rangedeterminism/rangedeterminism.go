// Package rangedeterminism defines an analyzer that flags map iteration
// whose results feed ordered or serialized output without an intervening
// sort.
//
// Go randomizes map iteration order on purpose. Query answers, reports,
// heatmaps and the storage encoding must all be byte-reproducible across
// runs (the determinism tests in internal/cube assert exactly that), so any
// `for ... range m` over a map must either
//
//   - aggregate commutatively (sums, counts, set construction), or
//   - collect entries into a slice that is sorted before the function
//     returns.
//
// The analyzer reports two shapes:
//
//  1. serialization inside the loop body — fmt.Fprint*/Print* or
//     Write*/Encode method calls while ranging over a map, and
//  2. appends to a slice inside a map-range loop where no sort.* / slices.*
//     call mentioning that slice follows in the same function.
package rangedeterminism

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"github.com/cpskit/atypical/internal/analysis/framework"
)

// Analyzer flags nondeterministic map iteration feeding ordered output.
var Analyzer = &framework.Analyzer{
	Name: "rangedeterminism",
	Doc: "flag map iteration feeding serialized or collected output without a " +
		"subsequent sort (query answers and reports must be reproducible)",
	Run: run,
}

func run(pass *framework.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				// Function literals are visited when their enclosing
				// function is checked; sorting a slice in the enclosing
				// scope still counts.
				return true
			default:
				return true
			}
			for _, l := range Leaks(pass, body) {
				pass.Reportf(l.Pos, "%s", l.Message)
			}
			return true
		})
	}
	return nil, nil
}

// Leak is one order-leaking map iteration found by the heuristic.
type Leak struct {
	Pos     token.Pos
	Message string
}

// Leaks applies the analyzer's heuristic to one function body and returns
// the order-leaking map ranges as data instead of reporting them. The
// nondet analyzer reuses this to treat a leaky map range as a
// nondeterminism *source* for its interprocedural reachability pass, so the
// two analyzers cannot drift apart on what "unordered map range" means.
func Leaks(pass *framework.Pass, body *ast.BlockStmt) []Leak {
	if body == nil {
		return nil
	}
	return checkFunc(pass, body)
}

// appendSite records one `s = append(s, ...)` under a map-range loop.
type appendSite struct {
	obj      types.Object
	rng      *ast.RangeStmt
	reported bool
}

func checkFunc(pass *framework.Pass, body *ast.BlockStmt) []Leak {
	var leaks []Leak
	var sites []*appendSite
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		ast.Inspect(rng.Body, func(m ast.Node) bool {
			switch stmt := m.(type) {
			case *ast.CallExpr:
				if name, ok := serializes(pass, stmt); ok {
					leaks = append(leaks, Leak{Pos: stmt.Pos(), Message: fmt.Sprintf(
						"map iteration feeds %s; iteration order is random — collect and sort first",
						name)})
				}
			case *ast.AssignStmt:
				for i, rhs := range stmt.Rhs {
					if !isAppend(pass, rhs) || i >= len(stmt.Lhs) {
						continue
					}
					if obj := targetObject(pass, stmt.Lhs[i]); obj != nil {
						sites = append(sites, &appendSite{obj: obj, rng: rng})
					}
				}
			}
			return true
		})
		return true
	})
	if len(sites) == 0 {
		return leaks
	}
	// A site is satisfied by any sort.* / slices.* call after its loop that
	// mentions the appended slice.
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isSortCall(pass, call) {
			return true
		}
		for _, arg := range call.Args {
			obj := targetObject(pass, arg)
			if obj == nil {
				continue
			}
			for _, s := range sites {
				if s.obj == obj && call.Pos() > s.rng.End() {
					s.reported = true // satisfied
				}
			}
		}
		return true
	})
	for _, s := range sites {
		if !s.reported {
			leaks = append(leaks, Leak{Pos: s.rng.Pos(), Message: fmt.Sprintf(
				"map iteration collects into %q which is never sorted in this function; "+
					"result order is nondeterministic", s.obj.Name())})
		}
	}
	return leaks
}

// serializes reports whether call writes ordered output (and what kind).
func serializes(pass *framework.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	// fmt.Fprint*/Print* package-level calls.
	if id, ok := sel.X.(*ast.Ident); ok {
		if pkg, ok := pass.ObjectOf(id).(*types.PkgName); ok {
			if pkg.Imported().Path() == "fmt" {
				switch name {
				case "Fprint", "Fprintf", "Fprintln", "Print", "Printf", "Println":
					return "fmt." + name, true
				}
			}
			return "", false
		}
	}
	// Writer-shaped method calls: only on the well-known accumulating sinks,
	// so map-keyed stores with a Write-ish method don't trip the rule.
	switch name {
	case "WriteString", "WriteByte", "WriteRune", "Write", "Encode":
		if recv := pass.TypeOf(sel.X); recv != nil && isSink(recv) {
			return name + " on " + recv.String(), true
		}
	}
	return "", false
}

// isSink recognizes strings.Builder, bytes.Buffer, bufio.Writer and
// json/gob/binary encoders, by pointer or value.
func isSink(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		// Interfaces: io.Writer and friends.
		if iface, ok := t.Underlying().(*types.Interface); ok {
			return iface.NumMethods() > 0
		}
		return false
	}
	switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
	case "strings.Builder", "bytes.Buffer", "bufio.Writer",
		"encoding/json.Encoder", "encoding/gob.Encoder":
		return true
	}
	return false
}

func isAppend(pass *framework.Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.ObjectOf(id).(*types.Builtin)
	return ok && b.Name() == "append"
}

// targetObject resolves an lvalue/argument expression to its root object:
// plain identifiers and field selectors (x, s.f).
func targetObject(pass *framework.Pass, e ast.Expr) types.Object {
	switch x := e.(type) {
	case *ast.Ident:
		return pass.ObjectOf(x)
	case *ast.SelectorExpr:
		return pass.ObjectOf(x.Sel)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return targetObject(pass, x.X)
		}
	case *ast.ParenExpr:
		return targetObject(pass, x.X)
	}
	return nil
}

// isSortCall recognizes sort.* and slices.Sort* package-level calls.
func isSortCall(pass *framework.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkg, ok := pass.ObjectOf(id).(*types.PkgName)
	if !ok {
		return false
	}
	switch pkg.Imported().Path() {
	case "sort", "slices":
		return true
	}
	return false
}
