package rangedeterminism_test

import (
	"testing"

	"github.com/cpskit/atypical/internal/analysis/analysistest"
	"github.com/cpskit/atypical/internal/analysis/rangedeterminism"
)

func TestRangeDeterminism(t *testing.T) {
	diags := analysistest.Run(t, "testdata", rangedeterminism.Analyzer, "rangedeterminism")
	if len(diags) == 0 {
		t.Fatal("expected at least one true-positive diagnostic on the fixture")
	}
}
