// Fixture for the rangedeterminism analyzer: map iteration feeding
// serialized or collected output must sort; commutative aggregation and
// sorted collection are fine.
package rangedeterminism

import (
	"fmt"
	"sort"
	"strings"
)

func badSerialize(m map[string]int) string {
	var b strings.Builder
	for k, v := range m {
		fmt.Fprintf(&b, "%s=%d\n", k, v) // want `map iteration feeds fmt.Fprintf`
	}
	return b.String()
}

func badBuilder(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want `map iteration feeds WriteString`
	}
	return b.String()
}

func badCollect(m map[string]int) []string {
	var keys []string
	for k := range m { // want `collects into "keys" which is never sorted`
		keys = append(keys, k)
	}
	return keys
}

func goodCollectSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func goodCollectSortSlice(m map[string]float64) []float64 {
	out := make([]float64, 0, len(m))
	for _, v := range m {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func goodAggregate(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func goodMapToMap(m map[string]int) map[int]int {
	agg := make(map[int]int)
	for _, v := range m {
		agg[v%7] += v
	}
	return agg
}

func goodSliceRange(xs []string) string {
	var b strings.Builder
	for _, x := range xs { // slices iterate deterministically
		b.WriteString(x)
	}
	return b.String()
}
