package obs

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4). Output is
// deterministic: families sort by name, series sort by canonical label
// block, histogram buckets ascend — two registries in the same state
// render identical bytes, which the determinism test asserts.

// WriteTo renders the registry in the Prometheus text format. A nil
// registry writes nothing.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	if r == nil {
		return 0, nil
	}
	r.runCollect()
	cw := &countingWriter{w: w}
	bw := bufio.NewWriter(cw)
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	var err error
	for _, name := range names {
		if err = writeFamily(bw, r.families[name]); err != nil {
			break
		}
	}
	r.mu.RUnlock()
	if err == nil {
		err = bw.Flush()
	}
	return cw.n, err
}

// writeFamily renders one family: HELP and TYPE headers, then each series
// in sorted label order. Caller holds the registry read lock.
func writeFamily(w *bufio.Writer, fam *family) error {
	if fam.help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", fam.name, escapeHelp(fam.help)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam.name, fam.kind); err != nil {
		return err
	}
	keys := make([]string, 0, len(fam.series))
	for k := range fam.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		switch s := fam.series[k].(type) {
		case *Counter:
			if err := writeSample(w, fam.name, k, float64(s.Value())); err != nil {
				return err
			}
		case *Gauge:
			if err := writeSample(w, fam.name, k, s.Value()); err != nil {
				return err
			}
		case *Histogram:
			if err := writeHistogram(w, fam.name, k, s.Snapshot()); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeSample renders one scalar series line.
func writeSample(w *bufio.Writer, name, labels string, v float64) error {
	if labels == "" {
		_, err := fmt.Fprintf(w, "%s %s\n", name, formatValue(v))
		return err
	}
	_, err := fmt.Fprintf(w, "%s{%s} %s\n", name, labels, formatValue(v))
	return err
}

// writeHistogram renders the cumulative _bucket series plus _sum and
// _count, appending le to any existing label block.
func writeHistogram(w *bufio.Writer, name, labels string, s HistogramSnapshot) error {
	withLE := func(le string) string {
		if labels == "" {
			return `le="` + le + `"`
		}
		return labels + `,le="` + le + `"`
	}
	cum := int64(0)
	for i, bound := range s.Bounds {
		cum += s.Counts[i]
		if err := writeSample(w, name+"_bucket", withLE(formatValue(bound)), float64(cum)); err != nil {
			return err
		}
	}
	cum += s.Counts[len(s.Bounds)]
	if err := writeSample(w, name+"_bucket", withLE("+Inf"), float64(cum)); err != nil {
		return err
	}
	if err := writeSample(w, name+"_sum", labels, s.Sum); err != nil {
		return err
	}
	return writeSample(w, name+"_count", labels, float64(s.Count))
}

// formatValue renders a float the shortest way that round-trips.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes backslash and newline, the two characters HELP text
// must escape.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// countingWriter tracks bytes written through it.
type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// Handler serves the registry at GET /metrics in the text format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if _, err := r.WriteTo(w); err != nil {
			// Headers are gone; nothing to do but drop the connection.
			return
		}
	})
}

// NewDebugMux wires the standard operational surface: /metrics for the
// registry and the full net/http/pprof suite under /debug/pprof/ — on an
// explicit mux rather than http.DefaultServeMux, so callers choose what
// they expose and where. Passing a TraceRing additionally mounts it at
// /debug/traces (JSON, newest root span first); only the first ring is
// used.
func NewDebugMux(r *Registry, rings ...*TraceRing) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for _, ring := range rings {
		if ring != nil {
			mux.Handle("/debug/traces", ring.Handler())
			break
		}
	}
	return mux
}
