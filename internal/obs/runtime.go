package obs

import (
	"runtime"
	"runtime/debug"
	"sync"
)

// Go runtime metrics. RegisterRuntimeMetrics arms a registry with process
// vitals — goroutine count, heap bytes, GC pause distribution — refreshed
// at scrape time through the registry's collect hook, plus a constant
// atyp_build_info gauge carrying the toolchain version and VCS revision.
// Scrape-time refresh keeps the cost where the reader is: an unscraped
// registry never touches runtime.ReadMemStats.

// gcPauseBuckets spans 10µs to ~80ms in powers of two — the realistic Go
// GC stop-the-world pause range.
var gcPauseBuckets = ExpBuckets(10e-6, 2, 14)

// RegisterRuntimeMetrics registers the Go runtime families on r and hooks
// their refresh into every Snapshot/WriteTo. Safe to call more than once
// (handles resolve to the same series; each call adds its own hook, so call
// it once per registry). A nil registry is a no-op.
func RegisterRuntimeMetrics(r *Registry) {
	if r == nil {
		return
	}
	goroutines := r.Gauge("atyp_go_goroutines", "goroutines currently live")
	heapAlloc := r.Gauge("atyp_go_heap_alloc_bytes", "bytes of allocated heap objects")
	heapSys := r.Gauge("atyp_go_heap_sys_bytes", "bytes of heap obtained from the OS")
	gcRuns := r.Gauge("atyp_go_gc_runs_total", "completed GC cycles since process start")
	gcPause := r.Histogram("atyp_go_gc_pause_seconds",
		"stop-the-world GC pause durations", gcPauseBuckets)
	registerBuildInfo(r)

	var mu sync.Mutex
	lastGC := uint32(0)
	r.OnCollect(func() {
		goroutines.Set(float64(runtime.NumGoroutine()))
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		heapAlloc.Set(float64(ms.HeapAlloc))
		heapSys.Set(float64(ms.HeapSys))
		gcRuns.Set(float64(ms.NumGC))
		// Feed only the pauses completed since the previous scrape into the
		// histogram; PauseNs is a 256-entry circular buffer indexed by cycle.
		mu.Lock()
		from := lastGC
		if ms.NumGC-from > uint32(len(ms.PauseNs)) {
			from = ms.NumGC - uint32(len(ms.PauseNs))
		}
		for c := from; c < ms.NumGC; c++ {
			gcPause.Observe(float64(ms.PauseNs[(c+255)%256]) / 1e9)
		}
		lastGC = ms.NumGC
		mu.Unlock()
	})
}

// registerBuildInfo exposes atyp_build_info{go_version,vcs_revision} = 1,
// the conventional join key for "which binary produced these series".
func registerBuildInfo(r *Registry) {
	goVersion, revision := runtime.Version(), "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.GoVersion != "" {
			goVersion = bi.GoVersion
		}
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				revision = s.Value
			}
		}
	}
	r.Gauge("atyp_build_info",
		"constant 1 labeled with the build's toolchain and VCS revision",
		"go_version", goVersion, "vcs_revision", revision).Set(1)
}
