package obs

import (
	"context"
	"time"
)

// Spans. A span is one timed region of a pipeline run — an ingest, one of
// its stages, a query. Spans propagate through context.Context: WithExporter
// arms a context, Start opens a span as the child of whatever span the
// context already carries, and End stamps the duration and hands the
// completed span to the exporter. With no exporter in the context, Start
// returns a nil *Span whose methods are no-ops and allocates nothing —
// instrumented code calls Start/End unconditionally.

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string
	Value string
}

// Span is one completed (or in-flight) timed region. Fields are written by
// exactly one goroutine between Start and End; the exporter receives the
// span by value after End and may retain it.
type Span struct {
	// Name identifies the region, dot-scoped ("ingest.extract").
	Name string
	// Parent is the enclosing span's name, "" at the root.
	Parent string
	// Start is the opening wall-clock instant.
	Start time.Time
	// Duration is stamped by End.
	Duration time.Duration
	// Attrs carries span annotations, in SetAttr order.
	Attrs []Attr

	exporter SpanExporter
}

// SpanExporter receives each completed span. Exporters must be safe for
// concurrent calls: spans end on whatever goroutine ran the region.
type SpanExporter func(Span)

type exporterKey struct{}
type spanKey struct{}

// WithExporter arms a context: spans started below it are exported to exp.
// A nil exp returns ctx unchanged.
func WithExporter(ctx context.Context, exp SpanExporter) context.Context {
	if exp == nil {
		return ctx
	}
	return context.WithValue(ctx, exporterKey{}, exp)
}

// HasExporter reports whether ctx already carries a span exporter.
func HasExporter(ctx context.Context) bool {
	exp, _ := ctx.Value(exporterKey{}).(SpanExporter)
	return exp != nil
}

// Start opens a span named name if ctx carries an exporter, recording the
// context's current span as its parent, and returns a context carrying the
// new span. Without an exporter it returns ctx and a nil span — the
// zero-overhead disabled path.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	exp, _ := ctx.Value(exporterKey{}).(SpanExporter)
	if exp == nil {
		return ctx, nil
	}
	s := &Span{Name: name, Start: time.Now(), exporter: exp}
	if parent, _ := ctx.Value(spanKey{}).(*Span); parent != nil {
		s.Parent = parent.Name
	}
	return context.WithValue(ctx, spanKey{}, s), s
}

// SetAttr annotates the span; no-op on nil.
func (s *Span) SetAttr(key, value string) {
	if s != nil {
		s.Attrs = append(s.Attrs, Attr{Key: key, Value: value})
	}
}

// End stamps the duration and exports the span; no-op on nil. End must be
// called at most once, on the goroutine that ran the region.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.Duration = time.Since(s.Start)
	s.exporter(*s)
}
