package obs

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"strconv"
	"sync/atomic"
	"time"
)

// Spans. A span is one timed region of a pipeline run — an ingest, one of
// its stages, a query. Spans propagate through context.Context: WithExporter
// arms a context, Start opens a span as the child of whatever span the
// context already carries, and End stamps the duration and hands the
// completed span to the exporter. With no exporter in the context, Start
// returns a nil *Span whose methods are no-ops and allocates nothing —
// instrumented code calls Start/End unconditionally.
//
// Every span carries correlation IDs: a SpanID unique within the process, a
// TraceID shared by every span under the same root, and the ParentID of its
// enclosing span (0 at the root). The IDs let log lines (internal/obs/olog)
// and the trace ring (/debug/traces) join on the same request. They are
// drawn from a process-local atomic counter — cheap, collision-free within
// a process, and only drawn when an exporter is armed, so the disabled path
// stays allocation- and atomics-free.

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string
	Value string
}

// Span is one completed (or in-flight) timed region. Fields are written by
// exactly one goroutine between Start and End; the exporter receives the
// span by value after End and may retain it.
type Span struct {
	// Name identifies the region, dot-scoped ("ingest.extract").
	Name string
	// Parent is the enclosing span's name, "" at the root.
	Parent string
	// TraceID groups every span of one root region; inherited from the
	// parent span, freshly drawn at the root.
	TraceID uint64
	// SpanID uniquely identifies this span within the process.
	SpanID uint64
	// ParentID is the enclosing span's SpanID, 0 at the root.
	ParentID uint64
	// Remote marks a span whose parent lives in another process: TraceID
	// and ParentID were extracted from an inbound traceparent header. The
	// trace ring publishes such spans as local roots — their true parent
	// will never End in this process.
	Remote bool
	// Start is the opening wall-clock instant.
	Start time.Time
	// Duration is stamped by End.
	Duration time.Duration
	// Attrs carries span annotations, in SetAttr order.
	Attrs []Attr

	exporter SpanExporter
}

// idCounter deals process-unique span and trace IDs. It is seeded once per
// process from crypto/rand so IDs from distinct processes land in disjoint
// ranges with overwhelming probability — two shard servers must not both
// mint TraceID 1 when their traces are stitched on a coordinator. Within a
// process IDs stay monotonic (cheap atomic increment, no per-span entropy).
var idCounter atomic.Uint64

func init() {
	var b [8]byte
	if _, err := crand.Read(b[:]); err == nil {
		idCounter.Store(binary.LittleEndian.Uint64(b[:]))
	}
	// On entropy failure the counter starts at 0 — in-process uniqueness
	// (the correctness property) is preserved either way.
}

// nextID returns a fresh non-zero ID; 0 stays the "absent" sentinel even
// when the seeded counter wraps past it.
func nextID() uint64 {
	for {
		if id := idCounter.Add(1); id != 0 {
			return id
		}
	}
}

// TraceHex renders the trace ID as fixed-width hex, the form log lines and
// the /debug/traces JSON share.
func (s *Span) TraceHex() string { return idHex(s.TraceID) }

// SpanHex renders the span ID as fixed-width hex.
func (s *Span) SpanHex() string { return idHex(s.SpanID) }

// idHex renders an ID as 16 hex digits.
func idHex(id uint64) string {
	const digits = 16
	buf := make([]byte, 0, digits)
	buf = strconv.AppendUint(buf, id, 16)
	for len(buf) < digits {
		buf = append([]byte{'0'}, buf...)
	}
	return string(buf)
}

// SpanExporter receives each completed span. Exporters must be safe for
// concurrent calls: spans end on whatever goroutine ran the region.
type SpanExporter func(Span)

type exporterKey struct{}
type spanKey struct{}

// WithExporter arms a context: spans started below it are exported to exp.
// A nil exp returns ctx unchanged.
func WithExporter(ctx context.Context, exp SpanExporter) context.Context {
	if exp == nil {
		return ctx
	}
	return context.WithValue(ctx, exporterKey{}, exp)
}

// HasExporter reports whether ctx already carries a span exporter.
func HasExporter(ctx context.Context) bool {
	exp, _ := ctx.Value(exporterKey{}).(SpanExporter)
	return exp != nil
}

// SpanFromContext returns the span ctx is currently inside, or nil. Log
// handlers use it to stamp trace/span IDs onto records.
func SpanFromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

// Start opens a span named name if ctx carries an exporter, recording the
// context's current span as its parent, and returns a context carrying the
// new span. Without an exporter it returns ctx and a nil span — the
// zero-overhead disabled path.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	exp, _ := ctx.Value(exporterKey{}).(SpanExporter)
	if exp == nil {
		return ctx, nil
	}
	s := &Span{Name: name, SpanID: nextID(), Start: time.Now(), exporter: exp}
	if parent, _ := ctx.Value(spanKey{}).(*Span); parent != nil {
		s.Parent = parent.Name
		s.TraceID = parent.TraceID
		s.ParentID = parent.SpanID
	} else if rp, ok := ctx.Value(remoteParentKey{}).(remoteParent); ok {
		// No local parent, but the context carries an extracted traceparent:
		// continue the caller's trace across the process boundary.
		s.TraceID = rp.traceID
		s.ParentID = rp.spanID
		s.Remote = true
	} else {
		s.TraceID = nextID()
	}
	return context.WithValue(ctx, spanKey{}, s), s
}

// SetAttr annotates the span; no-op on nil.
func (s *Span) SetAttr(key, value string) {
	if s != nil {
		s.Attrs = append(s.Attrs, Attr{Key: key, Value: value})
	}
}

// End stamps the duration and exports the span; no-op on nil. End must be
// called at most once, on the goroutine that ran the region.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.Duration = time.Since(s.Start)
	s.exporter(*s)
}
