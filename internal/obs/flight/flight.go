// Package flight is the per-query flight recorder: one structured wide
// event per Run (and per subscription stream), carrying everything needed
// to answer "why was this query slow?" after the fact — trace ID, canonical
// query key, strategy, cache verdict and severity generation, per-shard
// fan-out latencies/retries, EXPLAIN stage timings, and the SLO verdict —
// without grepping logs or re-running the query.
//
// Events land in a bounded lock-free ring with head sampling for normal
// queries and tail-keep for the interesting ones: slow, errored, or partial
// events are always recorded regardless of the sampling rate, because the
// p999 outlier is exactly the event the recorder exists for.
//
// The package is context-armed like EXPLAIN: the facade calls WithEvent to
// attach an Event to the request context, inner layers (query engine, shard
// coordinator) stamp fields via EventFromContext as they run, and the
// facade records the finished event. All stamping is nil-safe — an unarmed
// context costs one context lookup per layer and nothing else.
package flight

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"
	"time"
)

// ShardCall is one shard's contribution to a scatter fan-out.
type ShardCall struct {
	// Name is the shard backend's name.
	Name string `json:"name"`
	// DurationNS is the wall-clock time of the shard call including retry.
	DurationNS int64 `json:"duration_ns"`
	// Retried reports whether the first attempt failed and was retried.
	Retried bool `json:"retried,omitempty"`
	// Failed reports whether the shard was lost after retry.
	Failed bool `json:"failed,omitempty"`
}

// Stage is one pipeline stage timing, mirrored from the EXPLAIN record.
type Stage struct {
	Name       string `json:"name"`
	In         int    `json:"in"`
	Out        int    `json:"out"`
	DurationNS int64  `json:"duration_ns"`
}

// SLOVerdict records how the run fared against its strategy's latency SLO.
type SLOVerdict struct {
	// TargetNS is the strategy's latency target.
	TargetNS int64 `json:"target_ns"`
	// Met reports whether the run came in under the target.
	Met bool `json:"met"`
}

// Event is one wide event: the full story of a single query or
// subscription stream, denormalized so one record answers the question.
type Event struct {
	// Time is when the request started.
	Time time.Time `json:"time"`
	// Kind is "query" or "subscribe".
	Kind string `json:"kind"`
	// TraceID is the hex trace ID shared with /debug/traces and log lines;
	// empty when spans were not armed.
	TraceID string `json:"trace_id,omitempty"`
	// Key is the canonical query key (the answer-cache key).
	Key string `json:"key,omitempty"`
	// Strategy is the executed strategy's paper label.
	Strategy string `json:"strategy,omitempty"`
	// Source names the entry point ("facade", "http", "/subscribe").
	Source string `json:"source,omitempty"`
	// DurationNS is the end-to-end wall-clock time.
	DurationNS int64 `json:"duration_ns"`
	// Err is the error string for failed runs.
	Err string `json:"err,omitempty"`

	// Cache is the answer-cache verdict: "hit", "miss", or "off".
	Cache string `json:"cache,omitempty"`
	// ForestVersion is the forest version the run observed.
	ForestVersion uint64 `json:"forest_version,omitempty"`
	// SeverityGen is the severity-index generation the run observed.
	SeverityGen uint64 `json:"severity_gen,omitempty"`

	// Candidates/Inputs/Significant are the run's cardinalities: candidates
	// scanned, clusters integrated, significant clusters answered.
	Candidates  int `json:"candidates,omitempty"`
	Inputs      int `json:"inputs,omitempty"`
	Significant int `json:"significant,omitempty"`

	// Partial and FailedShards surface degraded scatter-gather answers.
	Partial      bool     `json:"partial,omitempty"`
	FailedShards []string `json:"failed_shards,omitempty"`
	// Shards holds the per-shard fan-out timings, in shard order.
	Shards []ShardCall `json:"shards,omitempty"`
	// Stages holds the EXPLAIN stage timings, in execution order.
	Stages []Stage `json:"stages,omitempty"`
	// SLO is the latency-SLO verdict, nil when no SLO is armed.
	SLO *SLOVerdict `json:"slo,omitempty"`

	// Subscription stream counters (Kind "subscribe").
	Pushes  uint64 `json:"pushes,omitempty"`
	Dropped uint64 `json:"dropped,omitempty"`
	Gaps    uint64 `json:"gaps,omitempty"`
	// MaxPushLatencyNS is the worst emit-to-write latency observed.
	MaxPushLatencyNS int64 `json:"max_push_latency_ns,omitempty"`
}

// eventKey arms a context with an *Event.
type eventKey struct{}

// WithEvent attaches a fresh Event to ctx for inner layers to stamp.
func WithEvent(ctx context.Context) (context.Context, *Event) {
	ev := &Event{}
	return context.WithValue(ctx, eventKey{}, ev), ev
}

// EventFromContext returns the armed event, or nil.
func EventFromContext(ctx context.Context) *Event {
	ev, _ := ctx.Value(eventKey{}).(*Event)
	return ev
}

// Recorder is the bounded ring of recorded events. Like the trace ring it
// is lock-free: an atomic cursor increment plus an atomic pointer store per
// record, atomic loads per snapshot.
type Recorder struct {
	slots  []atomic.Pointer[Event]
	cursor atomic.Uint64

	sampleEvery uint64       // keep 1 of every N normal events; <=1 keeps all
	slowNS      int64        // events at/above always kept; <=0 disables
	seen        atomic.Uint64 // normal-event counter driving head sampling

	recorded atomic.Uint64 // events kept
	sampled  atomic.Uint64 // normal events dropped by head sampling
}

// Config sizes and tunes a Recorder.
type Config struct {
	// Entries is the ring capacity; < 1 is raised to 1.
	Entries int
	// SampleEvery keeps 1 of every N normal events (head sampling);
	// <= 1 keeps every event.
	SampleEvery int
	// Slow is the tail-keep threshold: events at least this slow are always
	// recorded regardless of sampling. <= 0 applies tail-keep only to
	// errored and partial events.
	Slow time.Duration
}

// NewRecorder returns a recorder with the given configuration.
func NewRecorder(cfg Config) *Recorder {
	if cfg.Entries < 1 {
		cfg.Entries = 1
	}
	r := &Recorder{slots: make([]atomic.Pointer[Event], cfg.Entries)}
	if cfg.SampleEvery > 1 {
		r.sampleEvery = uint64(cfg.SampleEvery)
	}
	r.slowNS = cfg.Slow.Nanoseconds()
	return r
}

// interesting reports whether ev bypasses head sampling: errors, partial
// answers, and slow runs are always kept.
func (r *Recorder) interesting(ev *Event) bool {
	if ev.Err != "" || ev.Partial {
		return true
	}
	return r.slowNS > 0 && ev.DurationNS >= r.slowNS
}

// Record stores a copy of ev into the ring, subject to head sampling.
// Nil-safe on both receiver and event.
func (r *Recorder) Record(ev *Event) {
	if r == nil || ev == nil {
		return
	}
	if !r.interesting(ev) && r.sampleEvery > 1 {
		if r.seen.Add(1)%r.sampleEvery != 1 {
			r.sampled.Add(1)
			return
		}
	}
	cp := *ev
	r.recorded.Add(1)
	seq := r.cursor.Add(1)
	r.slots[(seq-1)%uint64(len(r.slots))].Store(&cp)
}

// Snapshot returns the recorded events, newest first.
func (r *Recorder) Snapshot() []Event {
	if r == nil {
		return nil
	}
	n := uint64(len(r.slots))
	head := r.cursor.Load()
	out := make([]Event, 0, n)
	for i := uint64(0); i < n && i < head; i++ {
		ev := r.slots[(head-1-i)%n].Load()
		if ev == nil {
			break // older slot not yet published by a lagging writer
		}
		out = append(out, *ev)
	}
	return out
}

// Stats reports the recorder's keep/drop counters: events recorded and
// normal events dropped by head sampling.
func (r *Recorder) Stats() (recorded, sampledOut uint64) {
	if r == nil {
		return 0, 0
	}
	return r.recorded.Load(), r.sampled.Load()
}

// Handler serves the ring as JSON (default) or plain text
// (?format=text), newest event first — the /debug/querylog surface.
func (r *Recorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		events := r.Snapshot()
		if req.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			for _, ev := range events {
				fmt.Fprintln(w, ev.Line())
			}
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(events) // headers sent; a broken pipe has no recovery
	})
}

// Line renders the event as one human-scannable text line.
func (ev Event) Line() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s kind=%s", ev.Time.Format(time.RFC3339Nano), ev.Kind)
	if ev.TraceID != "" {
		fmt.Fprintf(&b, " trace=%s", ev.TraceID)
	}
	if ev.Strategy != "" {
		fmt.Fprintf(&b, " strategy=%s", ev.Strategy)
	}
	fmt.Fprintf(&b, " dur=%s", time.Duration(ev.DurationNS))
	if ev.Cache != "" {
		fmt.Fprintf(&b, " cache=%s", ev.Cache)
	}
	if ev.Partial {
		fmt.Fprintf(&b, " partial=true failed=%s", strings.Join(ev.FailedShards, ","))
	}
	if len(ev.Shards) > 0 {
		fmt.Fprintf(&b, " shards=%d", len(ev.Shards))
	}
	if ev.SLO != nil {
		fmt.Fprintf(&b, " slo_met=%v", ev.SLO.Met)
	}
	if ev.Kind == "subscribe" {
		fmt.Fprintf(&b, " pushes=%d dropped=%d gaps=%d", ev.Pushes, ev.Dropped, ev.Gaps)
	}
	if ev.Err != "" {
		fmt.Fprintf(&b, " err=%q", ev.Err)
	}
	if ev.Key != "" {
		fmt.Fprintf(&b, " key=%q", ev.Key)
	}
	return b.String()
}
