package flight

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestWithEventRoundTrip(t *testing.T) {
	if EventFromContext(context.Background()) != nil {
		t.Fatal("unarmed context returned an event")
	}
	ctx, ev := WithEvent(context.Background())
	if got := EventFromContext(ctx); got != ev {
		t.Fatalf("EventFromContext = %p, want the armed event %p", got, ev)
	}
}

func TestRecorderKeepsNewestFirst(t *testing.T) {
	r := NewRecorder(Config{Entries: 3})
	for i := 0; i < 5; i++ {
		r.Record(&Event{Kind: "query", DurationNS: int64(i)})
	}
	got := r.Snapshot()
	if len(got) != 3 {
		t.Fatalf("snapshot length = %d, want ring capacity 3", len(got))
	}
	for i, want := range []int64{4, 3, 2} {
		if got[i].DurationNS != want {
			t.Errorf("snapshot[%d].DurationNS = %d, want %d (newest first)", i, got[i].DurationNS, want)
		}
	}
	if rec, _ := r.Stats(); rec != 5 {
		t.Errorf("recorded = %d, want 5", rec)
	}
}

func TestRecorderRecordsCopies(t *testing.T) {
	r := NewRecorder(Config{Entries: 2})
	ev := &Event{Kind: "query", Strategy: "All"}
	r.Record(ev)
	ev.Strategy = "mutated-after-record"
	if got := r.Snapshot(); got[0].Strategy != "All" {
		t.Errorf("recorded event aliased the caller's: %q", got[0].Strategy)
	}
}

func TestHeadSamplingKeepsOneOfN(t *testing.T) {
	r := NewRecorder(Config{Entries: 100, SampleEvery: 10})
	for i := 0; i < 100; i++ {
		r.Record(&Event{Kind: "query"})
	}
	rec, sampled := r.Stats()
	if rec != 10 || sampled != 90 {
		t.Errorf("recorded/sampled = %d/%d, want 10/90", rec, sampled)
	}
	if got := len(r.Snapshot()); got != 10 {
		t.Errorf("snapshot length = %d, want 10", got)
	}
}

func TestTailKeepBypassesSampling(t *testing.T) {
	r := NewRecorder(Config{Entries: 100, SampleEvery: 1000, Slow: time.Second})
	r.Record(&Event{Kind: "query"}) // 1st normal event: kept by head sampling
	interesting := []*Event{
		{Kind: "query", Err: "boom"},
		{Kind: "query", Partial: true},
		{Kind: "query", DurationNS: (2 * time.Second).Nanoseconds()},
	}
	for _, ev := range interesting {
		r.Record(ev)
	}
	for i := 0; i < 50; i++ {
		r.Record(&Event{Kind: "query"}) // all dropped: next head keep is the 1001st
	}
	rec, _ := r.Stats()
	if rec != 1+uint64(len(interesting)) {
		t.Errorf("recorded = %d, want %d (tail-keep for error/partial/slow)", rec, 1+len(interesting))
	}
	var errs, partials, slows int
	for _, ev := range r.Snapshot() {
		switch {
		case ev.Err != "":
			errs++
		case ev.Partial:
			partials++
		case ev.DurationNS >= time.Second.Nanoseconds():
			slows++
		}
	}
	if errs != 1 || partials != 1 || slows != 1 {
		t.Errorf("tail-kept errs/partials/slows = %d/%d/%d, want 1/1/1", errs, partials, slows)
	}
}

func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	r.Record(&Event{})
	if r.Snapshot() != nil {
		t.Error("nil recorder snapshot not nil")
	}
	if rec, sampled := r.Stats(); rec != 0 || sampled != 0 {
		t.Error("nil recorder stats not zero")
	}
}

func TestHandlerJSONAndText(t *testing.T) {
	r := NewRecorder(Config{Entries: 8})
	r.Record(&Event{
		Time: time.Unix(0, 0).UTC(), Kind: "query", TraceID: "00000000000000ab",
		Key: "All|0|7|3f947ae147ae147b|", Strategy: "All", Cache: "miss",
		DurationNS: int64(3 * time.Millisecond),
		Shards:     []ShardCall{{Name: "shard-0", DurationNS: 1000}, {Name: "shard-1", DurationNS: 2000, Retried: true}},
		Stages:     []Stage{{Name: "candidates", In: 10, Out: 5, DurationNS: 100}},
		SLO:        &SLOVerdict{TargetNS: int64(time.Second), Met: true},
	})

	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/querylog", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var events []Event
	if err := json.Unmarshal(rec.Body.Bytes(), &events); err != nil {
		t.Fatalf("querylog not JSON: %v\n%s", err, rec.Body.String())
	}
	if len(events) != 1 || events[0].TraceID != "00000000000000ab" || len(events[0].Shards) != 2 {
		t.Fatalf("JSON round trip mangled the event: %+v", events)
	}

	rec = httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/querylog?format=text", nil))
	text := rec.Body.String()
	for _, want := range []string{"kind=query", "trace=00000000000000ab", "strategy=All", "cache=miss", "shards=2", "slo_met=true"} {
		if !strings.Contains(text, want) {
			t.Errorf("text form missing %q:\n%s", want, text)
		}
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(Config{Entries: 64, SampleEvery: 3, Slow: time.Millisecond})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				ev := &Event{Kind: "query", DurationNS: int64(i)}
				if i%7 == 0 {
					ev.Err = "boom"
				}
				r.Record(ev)
				r.Snapshot()
			}
		}(g)
	}
	wg.Wait()
	for _, ev := range r.Snapshot() {
		if ev.Kind != "query" {
			t.Fatalf("torn event in ring: %+v", ev)
		}
	}
}
