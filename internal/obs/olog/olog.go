// Package olog is the project's structured logging seam: a thin wrapper
// around the stdlib log/slog that stamps every record carrying a traced
// context with the span correlation IDs of internal/obs. One seam, one
// format — cmd/ binaries log through olog instead of log.Printf, so a log
// line about a slow query carries the same trace ID as the span in
// /debug/traces and the EXPLAIN record returned to the client. The rawlog
// atyplint analyzer mechanically enforces the seam.
//
// Records logged with a plain context carry no extra attributes; records
// logged with a context inside an obs span gain trace, span and span_name.
// The handler delegates rendering to any slog.Handler, so callers pick
// text (human tails) or JSON (log shippers) without touching call sites.
package olog

import (
	"context"
	"io"
	"log/slog"

	"github.com/cpskit/atypical/internal/obs"
)

// Handler decorates an inner slog.Handler with span correlation: records
// whose context is inside an obs span gain trace/span/span_name attributes.
type Handler struct {
	inner slog.Handler
}

// NewHandler wraps inner with span correlation.
func NewHandler(inner slog.Handler) *Handler {
	return &Handler{inner: inner}
}

// Enabled defers to the inner handler.
func (h *Handler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.inner.Enabled(ctx, level)
}

// Handle stamps span correlation attributes and delegates.
func (h *Handler) Handle(ctx context.Context, rec slog.Record) error {
	if sp := obs.SpanFromContext(ctx); sp != nil {
		rec = rec.Clone()
		rec.AddAttrs(
			slog.String("trace", sp.TraceHex()),
			slog.String("span", sp.SpanHex()),
			slog.String("span_name", sp.Name),
		)
	}
	return h.inner.Handle(ctx, rec)
}

// WithAttrs returns a correlated handler over the inner handler's WithAttrs.
func (h *Handler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &Handler{inner: h.inner.WithAttrs(attrs)}
}

// WithGroup returns a correlated handler over the inner handler's WithGroup.
func (h *Handler) WithGroup(name string) slog.Handler {
	return &Handler{inner: h.inner.WithGroup(name)}
}

// Options configures the convenience constructors.
type Options struct {
	// Level is the minimum record level (default slog.LevelInfo).
	Level slog.Leveler
	// JSON selects slog.NewJSONHandler rendering over text.
	JSON bool
}

// New returns a logger writing slog text lines to w with span correlation —
// the default for command diagnostics on stderr.
func New(w io.Writer) *slog.Logger { return NewWith(w, Options{}) }

// NewJSON returns a logger writing slog JSON lines to w with span
// correlation — the shape log shippers ingest.
func NewJSON(w io.Writer) *slog.Logger { return NewWith(w, Options{JSON: true}) }

// NewWith returns a correlated logger over w with explicit options.
func NewWith(w io.Writer, o Options) *slog.Logger {
	hopts := &slog.HandlerOptions{Level: o.Level}
	var inner slog.Handler
	if o.JSON {
		inner = slog.NewJSONHandler(w, hopts)
	} else {
		inner = slog.NewTextHandler(w, hopts)
	}
	return slog.New(NewHandler(inner))
}
