package olog_test

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"sync"
	"testing"

	"github.com/cpskit/atypical/internal/obs"
	"github.com/cpskit/atypical/internal/obs/olog"
)

// TestSpanCorrelation checks a record logged inside a span carries the
// span's trace and span IDs, and one logged outside carries neither.
func TestSpanCorrelation(t *testing.T) {
	var buf bytes.Buffer
	logger := olog.NewJSON(&buf)

	ctx := obs.WithExporter(context.Background(), func(obs.Span) {})
	sctx, sp := obs.Start(ctx, "query.run")
	if sp == nil {
		t.Fatal("armed context produced a nil span")
	}
	logger.InfoContext(sctx, "inside", "k", "v")
	sp.End()
	logger.InfoContext(context.Background(), "outside")

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d log lines, want 2:\n%s", len(lines), buf.String())
	}

	var inside map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &inside); err != nil {
		t.Fatalf("inside line not JSON: %v", err)
	}
	if inside["trace"] != sp.TraceHex() || inside["span"] != sp.SpanHex() {
		t.Errorf("inside line trace/span = %v/%v, want %s/%s",
			inside["trace"], inside["span"], sp.TraceHex(), sp.SpanHex())
	}
	if inside["span_name"] != "query.run" {
		t.Errorf("span_name = %v, want query.run", inside["span_name"])
	}
	if inside["k"] != "v" {
		t.Errorf("user attr lost: %v", inside)
	}

	var outside map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &outside); err != nil {
		t.Fatalf("outside line not JSON: %v", err)
	}
	if _, ok := outside["trace"]; ok {
		t.Errorf("uncorrelated record gained a trace attr: %v", outside)
	}
}

// TestTextHandlerCorrelation checks the text form carries the same
// correlation attributes.
func TestTextHandlerCorrelation(t *testing.T) {
	var buf bytes.Buffer
	logger := olog.New(&buf)
	ctx := obs.WithExporter(context.Background(), func(obs.Span) {})
	sctx, sp := obs.Start(ctx, "ingest")
	logger.WarnContext(sctx, "slow")
	sp.End()
	line := buf.String()
	if !strings.Contains(line, "trace="+sp.TraceHex()) || !strings.Contains(line, "span_name=ingest") {
		t.Errorf("text line missing correlation: %s", line)
	}
}

// TestLevelGate checks Options.Level filters below-threshold records.
func TestLevelGate(t *testing.T) {
	var buf bytes.Buffer
	logger := olog.NewWith(&buf, olog.Options{Level: slog.LevelWarn})
	logger.Info("dropped")
	logger.Warn("kept")
	if got := buf.String(); strings.Contains(got, "dropped") || !strings.Contains(got, "kept") {
		t.Errorf("level gate failed:\n%s", got)
	}
}

// TestWithAttrsAndGroupKeepCorrelation checks derived loggers still stamp
// span IDs.
func TestWithAttrsAndGroupKeepCorrelation(t *testing.T) {
	var buf bytes.Buffer
	logger := olog.NewJSON(&buf).With("component", "serve").WithGroup("query")
	ctx := obs.WithExporter(context.Background(), func(obs.Span) {})
	sctx, sp := obs.Start(ctx, "query.run")
	logger.InfoContext(sctx, "hit", "strategy", "gui")
	sp.End()
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("not JSON: %v", err)
	}
	if rec["component"] != "serve" {
		t.Errorf("WithAttrs attr lost: %v", rec)
	}
	group, _ := rec["query"].(map[string]any)
	if group == nil || group["strategy"] != "gui" {
		t.Errorf("group attrs wrong: %v", rec)
	}
	// Correlation attrs are added at Handle time, inside the open group —
	// present either at top level or in the group depending on handler
	// nesting; assert they exist somewhere.
	if rec["trace"] == nil && group["trace"] == nil {
		t.Errorf("derived logger lost correlation: %v", rec)
	}
}

// TestConcurrentLoggingNoTornLines hammers one correlated logger from many
// goroutines — half inside spans, half not — and checks (under -race) that
// every emitted line is intact, well-formed JSON with a stable key order.
// slog serializes the final write per record; this pins that the olog
// decoration layer (Clone + AddAttrs at Handle time) does not reintroduce
// shared mutable state between concurrent Handle calls.
func TestConcurrentLoggingNoTornLines(t *testing.T) {
	var buf bytes.Buffer
	logger := olog.NewJSON(&buf)
	ctx := obs.WithExporter(context.Background(), func(obs.Span) {})

	const workers = 8
	const perWorker = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if w%2 == 0 {
					sctx, sp := obs.Start(ctx, "query.run")
					logger.InfoContext(sctx, "traced", "worker", w, "i", i)
					sp.End()
				} else {
					logger.InfoContext(context.Background(), "plain", "worker", w, "i", i)
				}
			}
		}(w)
	}
	wg.Wait()

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if got, want := len(lines), workers*perWorker; got != want {
		t.Fatalf("got %d log lines, want %d (torn or lost writes)", got, want)
	}
	keyOrder := func(line string) string {
		dec := json.NewDecoder(strings.NewReader(line))
		var keys []string
		depth := 0
		expectKey := false
		for {
			tok, err := dec.Token()
			if err != nil {
				break
			}
			switch v := tok.(type) {
			case json.Delim:
				switch v {
				case '{':
					depth++
					expectKey = depth == 1
				case '}':
					depth--
					expectKey = depth == 1
				}
			case string:
				if depth == 1 && expectKey {
					keys = append(keys, v)
					expectKey = false
				} else if depth == 1 {
					expectKey = true
				}
			default:
				if depth == 1 {
					expectKey = true
				}
			}
		}
		return strings.Join(keys, ",")
	}
	orders := map[string]string{} // msg -> key order
	for _, line := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("torn line %q: %v", line, err)
		}
		msg, _ := rec["msg"].(string)
		if msg != "traced" && msg != "plain" {
			t.Fatalf("unexpected msg %q in line %q", msg, line)
		}
		if msg == "traced" && (rec["trace"] == nil || rec["span"] == nil) {
			t.Errorf("traced line lost correlation: %s", line)
		}
		if msg == "plain" && rec["trace"] != nil {
			t.Errorf("plain line gained correlation: %s", line)
		}
		order := keyOrder(line)
		if prev, ok := orders[msg]; !ok {
			orders[msg] = order
		} else if prev != order {
			t.Errorf("key order of %q lines unstable: %q vs %q", msg, prev, order)
		}
	}
}
