// Package obs is the stdlib-only observability layer: an atomic metrics
// registry (counters, gauges, fixed-bucket histograms), lightweight
// context-propagated spans with an exporter hook, and a Prometheus-text
// /metrics handler with pprof wiring.
//
// The design constraint, shared with internal/par, is that observing the
// pipeline must never change what it computes: every hook is an atomic
// add on a pre-resolved handle, and when no observer is configured every
// handle is nil and every method a nil-check no-op — instrumented code
// carries no branches on results, only on handles. The byte-identity and
// GOMAXPROCS-independence tests run with an observer attached to enforce
// this.
//
// Handles are resolved once at wiring time (Registry.Counter/Gauge/
// Histogram) and then used lock-free on the hot path. Series are named
// Prometheus-style: a metric family name plus sorted key="value" labels;
// ParseSeries/FormatSeries round-trip the canonical form, and the
// /metrics output is deterministic (families and series sorted).
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Kind discriminates the metric families of a Registry.
type Kind uint8

// The three metric kinds, mirroring the Prometheus TYPE keywords.
const (
	KindCounter Kind = iota + 1
	KindGauge
	KindHistogram
)

// String implements fmt.Stringer using the Prometheus TYPE names.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Registry holds metric families and hands out the atomic handles
// instrumented code updates. A Registry is safe for concurrent use:
// registration takes a lock, but the returned handles are updated and read
// lock-free. The nil *Registry is valid and inert — every method returns a
// nil handle or an empty snapshot, so "observability off" costs one nil
// check per hook.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	// collect hooks run before every Snapshot/WriteTo, outside the lock —
	// pull-style metrics (Go runtime vitals) refresh their gauges here.
	collect []func()
}

// family is one metric family: a name, a kind, and its label-keyed series.
type family struct {
	name   string
	kind   Kind
	help   string
	bounds []float64 // histogram families only
	series map[string]any
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter registers (or finds) the counter series name{labels...} and
// returns its handle. labels alternate key, value; the same name+labels
// always returns the same handle. Registration panics on an invalid metric
// or label name, an odd label count, or a kind conflict with an existing
// family — all observability wiring bugs. A nil registry returns a nil
// (no-op) handle.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	return r.register(name, help, KindCounter, nil, labels).(*Counter)
}

// Gauge registers (or finds) the gauge series name{labels...}.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	return r.register(name, help, KindGauge, nil, labels).(*Gauge)
}

// Histogram registers (or finds) the histogram series name{labels...} with
// the given ascending upper bucket bounds (an implicit +Inf bucket is
// appended). A nil bounds slice selects DefBuckets. The first registration
// of a family fixes its bounds; later registrations reuse them.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	if bounds == nil {
		bounds = DefBuckets
	}
	validateBounds(bounds)
	return r.register(name, help, KindHistogram, bounds, labels).(*Histogram)
}

// register resolves one series handle under the lock.
func (r *Registry) register(name, help string, kind Kind, bounds []float64, labels []string) any {
	if !validMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	key := labelKey(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	fam := r.families[name]
	if fam == nil {
		fam = &family{name: name, kind: kind, help: help, bounds: bounds, series: make(map[string]any)}
		r.families[name] = fam
	}
	if fam.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %v, requested as %v", name, fam.kind, kind))
	}
	if s, ok := fam.series[key]; ok {
		return s
	}
	var s any
	switch kind {
	case KindCounter:
		s = &Counter{}
	case KindGauge:
		s = &Gauge{}
	case KindHistogram:
		s = newHistogram(fam.bounds)
	}
	fam.series[key] = s
	return s
}

// Counter is a monotonically increasing integer metric. The nil *Counter
// is a no-op.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n; negative deltas are ignored (counters are monotone).
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on a nil handle).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float metric that can move both ways. The nil *Gauge is a
// no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add moves the gauge by delta (atomic compare-and-swap loop).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 on a nil handle).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Sample is one series in a Snapshot: a family name, the canonical label
// block (empty when unlabeled), and the value — scalar for counters and
// gauges, a bucket snapshot for histograms.
type Sample struct {
	Name   string
	Labels string
	Kind   Kind
	Value  float64
	Hist   *HistogramSnapshot
}

// Series renders the sample's canonical series identity, name{labels}.
func (s Sample) Series() string {
	if s.Labels == "" {
		return s.Name
	}
	return s.Name + "{" + s.Labels + "}"
}

// Snapshot is a point-in-time copy of every series in a registry, sorted
// by (name, labels) so two snapshots of identical state render identical
// bytes. Concurrent updates between two series' reads may make a snapshot
// a non-instantaneous cut; each individual scalar is atomically read.
type Snapshot struct {
	Samples []Sample
}

// OnCollect registers fn to run at the start of every Snapshot and WriteTo,
// before the registry lock is taken — the seam for scrape-time metrics that
// are pulled rather than pushed (see RegisterRuntimeMetrics). Hooks must be
// safe for concurrent calls: two scrapes may overlap.
func (r *Registry) OnCollect(fn func()) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.collect = append(r.collect, fn)
	r.mu.Unlock()
}

// runCollect invokes the collect hooks outside the lock.
func (r *Registry) runCollect() {
	r.mu.RLock()
	hooks := r.collect
	r.mu.RUnlock()
	for _, fn := range hooks {
		fn()
	}
}

// Snapshot captures the registry. A nil registry yields an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.runCollect()
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []Sample
	for _, name := range names {
		fam := r.families[name]
		keys := make([]string, 0, len(fam.series))
		for k := range fam.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			sample := Sample{Name: name, Labels: k, Kind: fam.kind}
			switch s := fam.series[k].(type) {
			case *Counter:
				sample.Value = float64(s.Value())
			case *Gauge:
				sample.Value = s.Value()
			case *Histogram:
				snap := s.Snapshot()
				sample.Hist = &snap
			}
			out = append(out, sample)
		}
	}
	r.mu.RUnlock()
	return Snapshot{Samples: out}
}

// Value looks up a counter or gauge sample by name and label pairs.
func (s Snapshot) Value(name string, labels ...string) (float64, bool) {
	key := labelKey(labels)
	for _, sm := range s.Samples {
		if sm.Name == name && sm.Labels == key && sm.Hist == nil {
			return sm.Value, true
		}
	}
	return 0, false
}

// Histogram looks up a histogram sample by name and label pairs.
func (s Snapshot) Histogram(name string, labels ...string) (*HistogramSnapshot, bool) {
	key := labelKey(labels)
	for _, sm := range s.Samples {
		if sm.Name == name && sm.Labels == key && sm.Hist != nil {
			return sm.Hist, true
		}
	}
	return nil, false
}

// Flatten renders the snapshot as a flat series → value map: counters and
// gauges map directly, histograms expand to _count and _sum entries. JSON
// marshaling sorts map keys, so flattened snapshots serialize
// deterministically.
func (s Snapshot) Flatten() map[string]float64 {
	out := make(map[string]float64, len(s.Samples))
	for _, sm := range s.Samples {
		if sm.Hist != nil {
			out[Sample{Name: sm.Name + "_count", Labels: sm.Labels}.Series()] = float64(sm.Hist.Count)
			out[Sample{Name: sm.Name + "_sum", Labels: sm.Labels}.Series()] = sm.Hist.Sum
			continue
		}
		out[sm.Series()] = sm.Value
	}
	return out
}
