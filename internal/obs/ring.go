package obs

import (
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// TraceRing keeps the last N finished root spans together with their child
// spans — the live introspection surface behind /debug/traces. It doubles
// as a SpanExporter: wire ring.Export as the exporter and every completed
// root region (a query, an ingest) lands in the ring with its stage spans
// attached.
//
// The ring itself is lock-free: completed traces are published by an
// atomic cursor increment plus an atomic pointer store, and snapshots read
// the slots with atomic loads — writers never block readers and vice
// versa. Child spans end before their root (End is called innermost-first),
// so between a child's End and its root's End the child is parked in a
// small mutex-guarded staging map keyed by trace ID; only the final
// assembly into the ring is published.
type TraceRing struct {
	slots  []atomic.Pointer[Trace]
	cursor atomic.Uint64 // next sequence number; slot = (seq-1) % len

	mu      sync.Mutex
	pending map[uint64][]Span // trace ID → finished non-root spans
}

// Trace is one finished root span plus the child spans that ran under it,
// in completion order.
type Trace struct {
	Root     Span
	Children []Span
}

// maxStagedTraces bounds how many distinct unfinished traces may hold
// staged children at once.
const maxStagedTraces = 1024

// NewTraceRing returns a ring keeping the last n root spans; n < 1 is
// raised to 1.
func NewTraceRing(n int) *TraceRing {
	if n < 1 {
		n = 1
	}
	return &TraceRing{
		slots:   make([]atomic.Pointer[Trace], n),
		pending: make(map[uint64][]Span),
	}
}

// Export implements SpanExporter: child spans stage until their root ends,
// root spans assemble the trace and publish it into the ring. A Remote span
// — one whose parent lives in another process — publishes as a local root:
// its true parent will never End here, so staging it would leak it forever.
// Spans without a trace ID (never produced by Start) are dropped.
func (tr *TraceRing) Export(s Span) {
	if tr == nil || s.TraceID == 0 {
		return
	}
	if s.ParentID != 0 && !s.Remote {
		tr.mu.Lock()
		// Bound the staging map: a root that never ends (panic, programmer
		// error) must not leak its children forever. Dropping the incoming
		// child loses detail on a pathological trace, never a healthy one.
		if len(tr.pending) < maxStagedTraces || tr.pending[s.TraceID] != nil {
			tr.pending[s.TraceID] = append(tr.pending[s.TraceID], s)
		}
		tr.mu.Unlock()
		return
	}
	tr.mu.Lock()
	children := tr.pending[s.TraceID]
	delete(tr.pending, s.TraceID)
	tr.mu.Unlock()
	t := &Trace{Root: s, Children: children}
	seq := tr.cursor.Add(1)
	tr.slots[(seq-1)%uint64(len(tr.slots))].Store(t)
}

// Snapshot returns the completed traces, newest first. Concurrent exports
// may publish while the snapshot walks the slots; each slot read is atomic,
// so every returned trace is fully assembled even if the set is a
// non-instantaneous cut.
func (tr *TraceRing) Snapshot() []Trace {
	if tr == nil {
		return nil
	}
	n := uint64(len(tr.slots))
	head := tr.cursor.Load()
	out := make([]Trace, 0, n)
	for i := uint64(0); i < n && i < head; i++ {
		t := tr.slots[(head-1-i)%n].Load()
		if t == nil {
			break // older slot not yet published by a lagging writer
		}
		out = append(out, *t)
	}
	return out
}

// traceJSON is the wire shape of one trace at /debug/traces.
type traceJSON struct {
	Trace    string     `json:"trace"`
	Root     spanJSON   `json:"root"`
	Children []spanJSON `json:"children,omitempty"`
}

// spanJSON is the wire shape of one span.
type spanJSON struct {
	Name       string            `json:"name"`
	Span       string            `json:"span"`
	Parent     string            `json:"parent,omitempty"`
	Start      time.Time         `json:"start"`
	DurationMS float64           `json:"duration_ms"`
	Attrs      map[string]string `json:"attrs,omitempty"`
}

func toSpanJSON(s Span) spanJSON {
	out := spanJSON{
		Name:       s.Name,
		Span:       s.SpanHex(),
		Parent:     s.Parent,
		Start:      s.Start,
		DurationMS: float64(s.Duration) / float64(time.Millisecond),
	}
	if len(s.Attrs) > 0 {
		out.Attrs = make(map[string]string, len(s.Attrs))
		for _, a := range s.Attrs {
			out.Attrs[a.Key] = a.Value
		}
	}
	return out
}

// Handler serves the ring as JSON, newest trace first.
func (tr *TraceRing) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		traces := tr.Snapshot()
		out := make([]traceJSON, 0, len(traces))
		for _, t := range traces {
			tj := traceJSON{Trace: t.Root.TraceHex(), Root: toSpanJSON(t.Root)}
			for _, c := range t.Children {
				tj.Children = append(tj.Children, toSpanJSON(c))
			}
			out = append(out, tj)
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(out) // headers sent; a broken pipe has no recovery
	})
}
