package obs

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"testing"
)

func TestFormatParseTraceparentRoundTrip(t *testing.T) {
	cases := []struct{ trace, span uint64 }{
		{1, 2},
		{0xdeadbeefcafef00d, 0x0123456789abcdef},
		{^uint64(0), 1},
	}
	for _, c := range cases {
		v := FormatTraceparent(c.trace, c.span)
		if !strings.HasPrefix(v, "00-") || !strings.HasSuffix(v, "-01") {
			t.Errorf("FormatTraceparent(%x, %x) = %q: bad framing", c.trace, c.span, v)
		}
		gotTrace, gotSpan, ok := ParseTraceparent(v)
		if !ok || gotTrace != c.trace || gotSpan != c.span {
			t.Errorf("round trip %x/%x → %q → %x/%x ok=%v", c.trace, c.span, v, gotTrace, gotSpan, ok)
		}
	}
	if v := FormatTraceparent(0, 5); v != "" {
		t.Errorf("FormatTraceparent(0, 5) = %q, want empty", v)
	}
	if v := FormatTraceparent(5, 0); v != "" {
		t.Errorf("FormatTraceparent(5, 0) = %q, want empty", v)
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	bad := []string{
		"",
		"00-short-bad-01",
		"00-00000000000000000000000000000001-0000000000000002", // missing flags
		"ff-00000000000000000000000000000001-0000000000000002-01", // reserved version
		"zz-00000000000000000000000000000001-0000000000000002-01",
		"00-0000000000000000000000000000000g-0000000000000002-01",
		"00-00000000000000000000000000000000-0000000000000002-01", // zero trace
		"00-00000000000000000000000000000001-0000000000000000-01", // zero span
	}
	for _, v := range bad {
		if _, _, ok := ParseTraceparent(v); ok {
			t.Errorf("ParseTraceparent(%q) accepted, want reject", v)
		}
	}
	// Future versions with extra fields are accepted (W3C forward compat).
	if trace, span, ok := ParseTraceparent("01-00000000000000000000000000000abc-0000000000000def-01-extra"); !ok || trace != 0xabc || span != 0xdef {
		t.Errorf("future-version traceparent rejected: %x/%x ok=%v", trace, span, ok)
	}
	// A 128-bit trace ID keeps its low 64 bits.
	if trace, _, ok := ParseTraceparent("00-ffffffffffffffff00000000000000ab-0000000000000001-01"); !ok || trace != 0xab {
		t.Errorf("128-bit trace ID: got %x ok=%v, want low 64 bits ab", trace, ok)
	}
}

func TestInjectExtractContinuesTrace(t *testing.T) {
	var spans []Span
	exp := func(s Span) { spans = append(spans, s) }

	// Client process: a root span injects its IDs into an outbound header.
	cctx, root := Start(WithExporter(context.Background(), exp), "client.request")
	h := http.Header{}
	InjectTraceparent(cctx, h)
	if h.Get(TraceparentHeader) == "" {
		t.Fatal("InjectTraceparent wrote no header under an active span")
	}

	// Server process: extract, then the first span adopts the remote trace.
	sctx := ExtractTraceparent(WithExporter(context.Background(), exp), h)
	_, server := Start(sctx, "http.request")
	if server.TraceID != root.TraceID {
		t.Errorf("server TraceID = %x, want client's %x", server.TraceID, root.TraceID)
	}
	if server.ParentID != root.SpanID {
		t.Errorf("server ParentID = %x, want client's span %x", server.ParentID, root.SpanID)
	}
	if !server.Remote {
		t.Error("server span not marked Remote")
	}

	// A remote-rooted span publishes as a root in the trace ring.
	ring := NewTraceRing(4)
	server.Duration = 1
	ring.Export(*server)
	traces := ring.Snapshot()
	if len(traces) != 1 || traces[0].Root.SpanID != server.SpanID {
		t.Fatalf("remote-rooted span did not publish as a ring root: %+v", traces)
	}

	// A local child under the server span still stages normally.
	sctx2, srv2 := Start(ExtractTraceparent(WithExporter(context.Background(), exp), h), "http.request")
	_, child := Start(sctx2, "query.run")
	if child.TraceID != root.TraceID || child.ParentID != srv2.SpanID || child.Remote {
		t.Errorf("local child under remote root: trace %x parent %x remote %v", child.TraceID, child.ParentID, child.Remote)
	}
	ring2 := NewTraceRing(4)
	ring2.Export(*child)
	if got := ring2.Snapshot(); len(got) != 0 {
		t.Fatalf("local child published before its root: %+v", got)
	}
	ring2.Export(*srv2)
	got := ring2.Snapshot()
	if len(got) != 1 || len(got[0].Children) != 1 || got[0].Children[0].SpanID != child.SpanID {
		t.Fatalf("remote root did not assemble its local children: %+v", got)
	}
}

func TestInjectTraceparentNoSpanIsNoop(t *testing.T) {
	h := http.Header{}
	InjectTraceparent(context.Background(), h)
	if len(h) != 0 {
		t.Errorf("header written without a span: %v", h)
	}
}

func TestExtractTraceparentMalformedIsNoop(t *testing.T) {
	ctx := context.Background()
	h := http.Header{}
	h.Set(TraceparentHeader, "garbage")
	if got := ExtractTraceparent(ctx, h); got != ctx {
		t.Error("malformed traceparent changed the context")
	}
	_, sp := Start(ExtractTraceparent(WithExporter(ctx, func(Span) {}), h), "root")
	if sp.Remote || sp.ParentID != 0 {
		t.Errorf("span after malformed extract: remote %v parent %x", sp.Remote, sp.ParentID)
	}
}

// TestFreshProcessTraceIDsDiffer re-execs the test binary twice and checks
// the first trace ID minted by each fresh process differs — the regression
// test for the counter-from-1 collision bug that broke cross-process
// stitching (two shard servers both minting TraceID 1).
func TestFreshProcessTraceIDsDiffer(t *testing.T) {
	if os.Getenv("OBS_PRINT_FIRST_TRACE_ID") == "1" {
		_, sp := Start(WithExporter(context.Background(), func(Span) {}), "probe")
		fmt.Printf("first-trace-id=%s\n", sp.TraceHex())
		os.Exit(0)
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("locating test binary: %v", err)
	}
	run := func() string {
		cmd := exec.Command(exe, "-test.run", "TestFreshProcessTraceIDsDiffer")
		cmd.Env = append(os.Environ(), "OBS_PRINT_FIRST_TRACE_ID=1")
		out, err := cmd.Output()
		if err != nil {
			t.Fatalf("re-exec: %v\n%s", err, out)
		}
		for _, line := range strings.Split(string(out), "\n") {
			if id, ok := strings.CutPrefix(line, "first-trace-id="); ok {
				return id
			}
		}
		t.Fatalf("re-exec printed no trace ID:\n%s", out)
		return ""
	}
	first, second := run(), run()
	if first == second {
		t.Fatalf("two fresh processes minted the same first trace ID %s", first)
	}
	if first == idHex(1) || second == idHex(1) {
		t.Fatalf("fresh process minted trace ID 1 (%s, %s): counter not seeded", first, second)
	}
}
