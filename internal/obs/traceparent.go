package obs

import (
	"context"
	"net/http"
	"strconv"
	"strings"
)

// Cross-process trace propagation. The wire form is the W3C Trace Context
// traceparent header:
//
//	traceparent: 00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>
//
// Our trace IDs are 64-bit, so they ride in the low 64 bits of the 128-bit
// field with the high half zero; on extract the low 64 bits are kept. An
// outbound hop injects the current span's IDs (InjectTraceparent); the
// receiving process extracts them into its context (ExtractTraceparent),
// and the first span started there adopts the remote trace ID, records the
// remote span as its parent, and is marked Remote so the local trace ring
// publishes it as a root — stitching happens by trace ID across the
// /debug/traces surfaces of both processes.

// TraceparentHeader is the canonical header name (lowercase per W3C; Go's
// http.Header canonicalizes on Set/Get either way).
const TraceparentHeader = "traceparent"

// remoteParent carries an extracted traceparent through a context until the
// first Start call adopts it.
type remoteParent struct {
	traceID uint64
	spanID  uint64
}

type remoteParentKey struct{}

// FormatTraceparent renders a traceparent header value for the given trace
// and span IDs, with the sampled flag set. Returns "" if either ID is zero
// (the absent sentinel must not cross the wire).
func FormatTraceparent(traceID, spanID uint64) string {
	if traceID == 0 || spanID == 0 {
		return ""
	}
	return "00-0000000000000000" + idHex(traceID) + "-" + idHex(spanID) + "-01"
}

// ParseTraceparent parses a traceparent header value, accepting any version
// except the reserved "ff" and keeping the low 64 bits of the 128-bit trace
// ID. ok is false on malformed input or all-zero IDs.
func ParseTraceparent(value string) (traceID, spanID uint64, ok bool) {
	parts := strings.Split(strings.TrimSpace(value), "-")
	if len(parts) < 4 {
		return 0, 0, false
	}
	ver, trace, span := parts[0], parts[1], parts[2]
	if len(ver) != 2 || len(trace) != 32 || len(span) != 16 {
		return 0, 0, false
	}
	if _, err := strconv.ParseUint(ver, 16, 8); err != nil || strings.EqualFold(ver, "ff") {
		return 0, 0, false
	}
	if _, err := strconv.ParseUint(trace[:16], 16, 64); err != nil {
		return 0, 0, false
	}
	traceID, err := strconv.ParseUint(trace[16:], 16, 64)
	if err != nil {
		return 0, 0, false
	}
	spanID, err = strconv.ParseUint(span, 16, 64)
	if err != nil {
		return 0, 0, false
	}
	if traceID == 0 || spanID == 0 {
		return 0, 0, false
	}
	return traceID, spanID, true
}

// InjectTraceparent writes the context's current span as a traceparent
// header on h. No-op when the context carries no span — an unarmed caller
// sends no header rather than a fabricated trace.
func InjectTraceparent(ctx context.Context, h http.Header) {
	sp := SpanFromContext(ctx)
	if sp == nil {
		return
	}
	if v := FormatTraceparent(sp.TraceID, sp.SpanID); v != "" {
		h.Set(TraceparentHeader, v)
	}
}

// ExtractTraceparent reads a traceparent header from h and returns a
// context carrying the remote parent; the next Start below it (with no
// local parent) continues the remote trace. Returns ctx unchanged when the
// header is absent or malformed.
func ExtractTraceparent(ctx context.Context, h http.Header) context.Context {
	traceID, spanID, ok := ParseTraceparent(h.Get(TraceparentHeader))
	if !ok {
		return ctx
	}
	return context.WithValue(ctx, remoteParentKey{}, remoteParent{traceID: traceID, spanID: spanID})
}
