package obs

import (
	"math"
	"testing"
)

// FuzzParseSeries asserts the canonicalization fixpoint: any string
// ParseSeries accepts must re-format to a string that parses to the same
// name and labels, and formatting is idempotent from there.
func FuzzParseSeries(f *testing.F) {
	f.Add("plain_total")
	f.Add(`req_total{op="get"}`)
	f.Add(`req_total{b="2",a="1",}`)
	f.Add(`esc_total{k="quote \" slash \\ nl \n"}`)
	f.Add(`x{k="v"}`)
	f.Fuzz(func(t *testing.T, s string) {
		name, labels, err := ParseSeries(s)
		if err != nil {
			return // rejected input is out of scope
		}
		canon, err := FormatSeries(name, labels...)
		if err != nil {
			// Parse accepts duplicate label keys that Format rejects;
			// that asymmetry is fine, nothing to round-trip.
			return
		}
		name2, labels2, err := ParseSeries(canon)
		if err != nil {
			t.Fatalf("canonical form %q (from %q) does not parse: %v", canon, s, err)
		}
		canon2, err := FormatSeries(name2, labels2...)
		if err != nil {
			t.Fatalf("re-formatting canonical %q: %v", canon, err)
		}
		if canon2 != canon {
			t.Fatalf("canonicalization not a fixpoint: %q -> %q -> %q", s, canon, canon2)
		}
		if name2 != name {
			t.Fatalf("name changed across round trip: %q -> %q", name, name2)
		}
	})
}

// FuzzHistogramMerge asserts Merge's algebra on arbitrary observation
// streams: counts merge exactly and commute, and the three-way merge
// associates (counts exactly; sums up to float rounding).
func FuzzHistogramMerge(f *testing.F) {
	f.Add([]byte{1, 200, 40}, []byte{0}, []byte{255, 3})
	f.Add([]byte{}, []byte{7, 7, 7}, []byte{})
	f.Fuzz(func(t *testing.T, a, b, c []byte) {
		bounds := []float64{10, 50, 100, 200}
		fill := func(bs []byte) HistogramSnapshot {
			h := newHistogram(bounds)
			for _, v := range bs {
				h.Observe(float64(v))
			}
			return h.Snapshot()
		}
		sa, sb, sc := fill(a), fill(b), fill(c)

		ab, err := sa.Merge(sb)
		if err != nil {
			t.Fatalf("merge: %v", err)
		}
		ba, err := sb.Merge(sa)
		if err != nil {
			t.Fatalf("merge: %v", err)
		}
		if ab.Count != ba.Count || math.Float64bits(ab.Sum) != math.Float64bits(ba.Sum) {
			t.Fatalf("merge not commutative: %+v vs %+v", ab, ba)
		}
		for i := range ab.Counts {
			if ab.Counts[i] != ba.Counts[i] {
				t.Fatalf("bucket %d not commutative: %v vs %v", i, ab.Counts, ba.Counts)
			}
		}
		if ab.Count != sa.Count+sb.Count || ab.Count != int64(len(a)+len(b)) {
			t.Fatalf("merged count %d, want %d", ab.Count, len(a)+len(b))
		}

		left, err := ab.Merge(sc)
		if err != nil {
			t.Fatalf("merge: %v", err)
		}
		bc, err := sb.Merge(sc)
		if err != nil {
			t.Fatalf("merge: %v", err)
		}
		right, err := sa.Merge(bc)
		if err != nil {
			t.Fatalf("merge: %v", err)
		}
		if left.Count != right.Count {
			t.Fatalf("merge not associative in Count: %d vs %d", left.Count, right.Count)
		}
		for i := range left.Counts {
			if left.Counts[i] != right.Counts[i] {
				t.Fatalf("bucket %d not associative: %v vs %v", i, left.Counts, right.Counts)
			}
		}
		if math.Abs(left.Sum-right.Sum) > 1e-9*math.Max(1, math.Abs(left.Sum)) {
			t.Fatalf("merge sums diverged: %v vs %v", left.Sum, right.Sum)
		}
	})
}
