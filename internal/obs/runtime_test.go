package obs

import (
	"runtime"
	"strings"
	"testing"
)

// TestRuntimeMetricsCollect checks the runtime families refresh at
// snapshot time and carry plausible values.
func TestRuntimeMetricsCollect(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeMetrics(r)

	snap := r.Snapshot()
	if v, ok := snap.Value("atyp_go_goroutines"); !ok || v < 1 {
		t.Errorf("atyp_go_goroutines = %v (ok=%v), want >= 1", v, ok)
	}
	if v, ok := snap.Value("atyp_go_heap_alloc_bytes"); !ok || v <= 0 {
		t.Errorf("atyp_go_heap_alloc_bytes = %v (ok=%v), want > 0", v, ok)
	}
	if _, ok := snap.Histogram("atyp_go_gc_pause_seconds"); !ok {
		t.Error("GC pause histogram not registered")
	}

	// Force a GC cycle; the next scrape must feed the pause histogram and
	// advance the cycle gauge.
	runtime.GC()
	snap = r.Snapshot()
	if v, _ := snap.Value("atyp_go_gc_runs_total"); v < 1 {
		t.Errorf("atyp_go_gc_runs_total = %v after runtime.GC(), want >= 1", v)
	}
	h, _ := snap.Histogram("atyp_go_gc_pause_seconds")
	if h.Count < 1 {
		t.Errorf("GC pause histogram count = %d after runtime.GC(), want >= 1", h.Count)
	}
}

// TestBuildInfoGauge checks the build info join gauge exists with the
// toolchain label and value 1.
func TestBuildInfoGauge(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeMetrics(r)
	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "atyp_build_info{") || !strings.Contains(out, `go_version="`) {
		t.Errorf("build info gauge missing:\n%.600s", out)
	}
	for _, sm := range r.Snapshot().Samples {
		if sm.Name == "atyp_build_info" && sm.Value != 1 {
			t.Errorf("atyp_build_info = %v, want 1", sm.Value)
		}
	}
}
