package obs

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Buckets. Histogram bounds are upper bucket bounds (the Prometheus `le`
// semantics); an implicit +Inf bucket always exists past the last bound.

// DefBuckets are the default latency bounds in seconds: 100µs to ~52s in
// powers of two — wide enough for both a pruned sub-millisecond query and
// a cold All-strategy integration over months.
var DefBuckets = ExpBuckets(100e-6, 2, 20)

// ExpBuckets returns n exponentially spaced bounds: start, start·factor,
// start·factor², …. It panics unless start > 0, factor > 1 and n ≥ 1.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic(fmt.Sprintf("obs: invalid ExpBuckets(%v, %v, %d)", start, factor, n))
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// validateBounds panics unless bounds are finite and strictly ascending.
func validateBounds(bounds []float64) {
	for i, b := range bounds {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic(fmt.Sprintf("obs: non-finite histogram bound %v", b))
		}
		if i > 0 && b <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending at %d: %v", i, bounds))
		}
	}
}

// Histogram counts observations into fixed buckets. Observations are
// lock-free atomic adds; Sum accumulates by compare-and-swap. The nil
// *Histogram is a no-op.
type Histogram struct {
	bounds  []float64 // immutable after construction
	counts  []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
}

// newHistogram builds a histogram over validated bounds.
func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one value. NaN observations are dropped (they would
// poison Sum and land in no meaningful bucket).
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v, len(bounds) = +Inf
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since start — the idiom for
// latency series: defer-free, one time.Now at each end.
func (h *Histogram) ObserveSince(start time.Time) {
	if h != nil {
		h.Observe(time.Since(start).Seconds())
	}
}

// HistogramSnapshot is a point-in-time copy of a histogram: per-bucket
// (non-cumulative) counts aligned with Bounds plus the +Inf overflow at
// Counts[len(Bounds)], and the total Count and Sum.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// Snapshot copies the histogram's current state. Buckets are read one
// atomic load at a time, so a snapshot taken during concurrent observation
// is a near-instantaneous, not exact, cut; Count is read last so it never
// undercounts the buckets.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Sum:    math.Float64frombits(h.sumBits.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.Count = h.count.Load()
	return s
}

// Merge combines two snapshots of histograms with identical bucket
// layouts: counts and sums add. Bounds are compared bit-exactly — two
// histograms either share a layout or cannot be merged at all. Merging is
// commutative and associative up to float rounding in Sum (counts merge
// exactly); the fuzz target asserts both.
func (s HistogramSnapshot) Merge(o HistogramSnapshot) (HistogramSnapshot, error) {
	if len(s.Bounds) != len(o.Bounds) || len(s.Counts) != len(o.Counts) {
		return HistogramSnapshot{}, fmt.Errorf("obs: merging histograms with %d/%d vs %d/%d bounds/buckets",
			len(s.Bounds), len(s.Counts), len(o.Bounds), len(o.Counts))
	}
	for i := range s.Bounds {
		if math.Float64bits(s.Bounds[i]) != math.Float64bits(o.Bounds[i]) {
			return HistogramSnapshot{}, fmt.Errorf("obs: merging histograms with different bound %d: %v vs %v",
				i, s.Bounds[i], o.Bounds[i])
		}
	}
	out := HistogramSnapshot{
		Bounds: s.Bounds,
		Counts: make([]int64, len(s.Counts)),
		Count:  s.Count + o.Count,
		Sum:    s.Sum + o.Sum,
	}
	for i := range out.Counts {
		out.Counts[i] = s.Counts[i] + o.Counts[i]
	}
	return out, nil
}
