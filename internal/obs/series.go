package obs

import (
	"fmt"
	"sort"
	"strings"
)

// Series naming. A series is a metric family name plus an optional label
// block: name{key="value",key2="value2"}. The canonical form — what the
// registry keys series by and what /metrics emits — sorts labels by key
// and escapes values Prometheus-style (backslash, quote, newline).
// ParseSeries accepts any well-formed series string and FormatSeries
// re-canonicalizes it, so parse∘format is the identity on canonical
// strings (the fuzz target's invariant).

// validMetricName reports whether s matches [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		alpha := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':'
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

// validLabelName reports whether s matches [a-zA-Z_][a-zA-Z0-9_]*.
func validLabelName(s string) bool {
	if s == "" || strings.ContainsRune(s, ':') {
		return false
	}
	return validMetricName(s)
}

// labelKey canonicalizes alternating key, value label pairs into the
// rendered label block (no braces): sorted by key, values escaped. It
// panics on an odd pair count, an invalid or duplicate key — registration
// is wiring code, and a bad label set is a programming bug.
func labelKey(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list %q", labels))
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		if !validLabelName(labels[i]) {
			panic(fmt.Sprintf("obs: invalid label name %q", labels[i]))
		}
		pairs = append(pairs, pair{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	for i := 1; i < len(pairs); i++ {
		if pairs[i].k == pairs[i-1].k {
			panic(fmt.Sprintf("obs: duplicate label %q", pairs[i].k))
		}
	}
	var b strings.Builder
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(p.v))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabelValue escapes backslash, double quote and newline, the three
// characters the Prometheus text format requires escaping in label values.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// FormatSeries renders the canonical series string for name plus
// alternating key, value labels. Unlike labelKey it reports malformed
// input as an error instead of panicking, so it is safe on parsed input.
func FormatSeries(name string, labels ...string) (string, error) {
	if !validMetricName(name) {
		return "", fmt.Errorf("obs: invalid metric name %q", name)
	}
	if len(labels)%2 != 0 {
		return "", fmt.Errorf("obs: odd label list (%d items)", len(labels))
	}
	for i := 0; i < len(labels); i += 2 {
		if !validLabelName(labels[i]) {
			return "", fmt.Errorf("obs: invalid label name %q", labels[i])
		}
		for j := 0; j < i; j += 2 {
			if labels[j] == labels[i] {
				return "", fmt.Errorf("obs: duplicate label %q", labels[i])
			}
		}
	}
	key := labelKey(labels)
	if key == "" {
		return name, nil
	}
	return name + "{" + key + "}", nil
}

// ParseSeries splits a series string into its family name and alternating
// key, value label pairs (in written order, unescaped). It accepts exactly
// the grammar FormatSeries emits: name, optionally followed by a brace
// block of key="value" pairs separated by commas, with an optional
// trailing comma Prometheus-style.
func ParseSeries(s string) (name string, labels []string, err error) {
	brace := strings.IndexByte(s, '{')
	if brace < 0 {
		if !validMetricName(s) {
			return "", nil, fmt.Errorf("obs: invalid metric name %q", s)
		}
		return s, nil, nil
	}
	name = s[:brace]
	if !validMetricName(name) {
		return "", nil, fmt.Errorf("obs: invalid metric name %q", name)
	}
	rest := s[brace+1:]
	if len(rest) == 0 || rest[len(rest)-1] != '}' {
		return "", nil, fmt.Errorf("obs: unterminated label block in %q", s)
	}
	rest = rest[:len(rest)-1]
	for rest != "" {
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return "", nil, fmt.Errorf("obs: missing '=' in label block %q", rest)
		}
		key := rest[:eq]
		if !validLabelName(key) {
			return "", nil, fmt.Errorf("obs: invalid label name %q", key)
		}
		rest = rest[eq+1:]
		if len(rest) == 0 || rest[0] != '"' {
			return "", nil, fmt.Errorf("obs: label %q value is not quoted", key)
		}
		value, remainder, err := unquoteLabelValue(rest[1:])
		if err != nil {
			return "", nil, fmt.Errorf("obs: label %q: %w", key, err)
		}
		labels = append(labels, key, value)
		rest = remainder
		switch {
		case rest == "":
		case rest[0] == ',':
			rest = rest[1:] // trailing comma before '}' is legal
		default:
			return "", nil, fmt.Errorf("obs: expected ',' or end after label %q", key)
		}
	}
	return name, labels, nil
}

// unquoteLabelValue consumes an escaped label value up to its closing
// quote, returning the decoded value and the unconsumed remainder.
func unquoteLabelValue(s string) (value, rest string, err error) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			return b.String(), s[i+1:], nil
		case '\\':
			i++
			if i >= len(s) {
				return "", "", fmt.Errorf("dangling escape")
			}
			switch s[i] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", "", fmt.Errorf("unknown escape \\%c", s[i])
			}
		case '\n':
			return "", "", fmt.Errorf("raw newline in value")
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", fmt.Errorf("unterminated value")
}
