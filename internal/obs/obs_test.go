package obs

import (
	"context"
	"io"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "")
	g := r.Gauge("x_gauge", "")
	h := r.Histogram("x_seconds", "", nil)
	if c != nil || g != nil || h != nil {
		t.Fatalf("nil registry handed out non-nil handles: %v %v %v", c, g, h)
	}
	// All handle methods must be no-ops, not panics.
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(2)
	h.Observe(1)
	h.ObserveSince(time.Now())
	if c.Value() != 0 || g.Value() != 0 || h.Snapshot().Count != 0 {
		t.Fatalf("nil handles reported nonzero values")
	}
	if n := len(r.Snapshot().Samples); n != 0 {
		t.Fatalf("nil registry snapshot has %d samples", n)
	}
	if n, err := r.WriteTo(io.Discard); n != 0 || err != nil {
		t.Fatalf("nil registry WriteTo = (%d, %v)", n, err)
	}
}

func TestRegistryHandlesAreStable(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("req_total", "requests", "op", "get")
	b := r.Counter("req_total", "requests", "op", "get")
	if a != b {
		t.Fatalf("same name+labels resolved to different handles")
	}
	other := r.Counter("req_total", "requests", "op", "put")
	if a == other {
		t.Fatalf("different labels resolved to the same handle")
	}
	a.Inc()
	a.Add(2)
	a.Add(-5) // ignored: counters are monotone
	if got := b.Value(); got != 3 {
		t.Fatalf("counter value = %d, want 3", got)
	}
}

func TestRegistryKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Fatalf("re-registering a counter family as a gauge did not panic")
		}
	}()
	r.Gauge("x_total", "")
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("open_events", "")
	g.Set(4)
	g.Add(-1.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge value = %v, want 2.5", got)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "", []float64{1, 2, 4})
	// Prometheus le semantics: a value equal to a bound lands in that
	// bound's bucket; above every bound lands in +Inf.
	for _, v := range []float64{-3, 0, 1} {
		h.Observe(v) // ≤ 1
	}
	h.Observe(1.0000001) // (1, 2]
	h.Observe(2)         // (1, 2]
	h.Observe(4)         // (2, 4]
	h.Observe(4.5)       // +Inf
	h.Observe(math.Inf(1))
	h.Observe(math.NaN()) // dropped
	s := h.Snapshot()
	want := []int64{3, 2, 1, 2}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d count = %d, want %d (all: %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 8 {
		t.Fatalf("total count = %d, want 8", s.Count)
	}
	if !math.IsInf(s.Sum, 1) {
		t.Fatalf("sum = %v, want +Inf (an Inf observation was recorded)", s.Sum)
	}
}

func TestHistogramMergeRejectsMismatchedBounds(t *testing.T) {
	a := newHistogram([]float64{1, 2}).Snapshot()
	b := newHistogram([]float64{1, 3}).Snapshot()
	if _, err := a.Merge(b); err == nil {
		t.Fatalf("merging different bounds did not error")
	}
	c := newHistogram([]float64{1}).Snapshot()
	if _, err := a.Merge(c); err == nil {
		t.Fatalf("merging different bucket counts did not error")
	}
}

func TestSeriesRoundTrip(t *testing.T) {
	cases := [][]string{
		{"plain_total"},
		{"req_total", "op", "get"},
		{"req_total", "b", "2", "a", "1"},
		{"esc_total", "k", `quote " slash \ and` + "\nnewline"},
	}
	for _, c := range cases {
		s, err := FormatSeries(c[0], c[1:]...)
		if err != nil {
			t.Fatalf("FormatSeries(%q): %v", c, err)
		}
		name, labels, err := ParseSeries(s)
		if err != nil {
			t.Fatalf("ParseSeries(%q): %v", s, err)
		}
		back, err := FormatSeries(name, labels...)
		if err != nil {
			t.Fatalf("re-FormatSeries(%q): %v", s, err)
		}
		if back != s {
			t.Fatalf("round trip %q -> %q", s, back)
		}
	}
}

func TestParseSeriesRejects(t *testing.T) {
	for _, s := range []string{
		"", "1bad", "x{", "x{}", "x{k}", "x{k=v}", `x{k="v}`, `x{k="v"`,
		`x{k="v"extra}`, `x{9k="v"}`, `x{k="\q"}`,
	} {
		if _, _, err := ParseSeries(s); err == nil && s != "x{}" {
			t.Errorf("ParseSeries(%q) accepted", s)
		}
	}
}

func TestSnapshotLookup(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "", "op", "x").Add(7)
	r.Histogram("b_seconds", "", []float64{1}).Observe(0.5)
	s := r.Snapshot()
	if v, ok := s.Value("a_total", "op", "x"); !ok || v != 7 {
		t.Fatalf("Value(a_total{op=x}) = (%v, %v)", v, ok)
	}
	if _, ok := s.Value("a_total"); ok {
		t.Fatalf("unlabeled lookup matched a labeled series")
	}
	h, ok := s.Histogram("b_seconds")
	if !ok || h.Count != 1 {
		t.Fatalf("Histogram(b_seconds) = (%+v, %v)", h, ok)
	}
	flat := s.Flatten()
	if flat[`a_total{op="x"}`] != 7 || flat["b_seconds_count"] != 1 || flat["b_seconds_sum"] != 0.5 {
		t.Fatalf("Flatten = %v", flat)
	}
}

func TestWriteToDeterministicAndParseable(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		// Register in scrambled order; output must not depend on it.
		r.Counter("z_total", "last family", "op", "b").Inc()
		r.Gauge("m_gauge", "middle").Set(1.25)
		r.Counter("z_total", "last family", "op", "a").Add(2)
		h := r.Histogram("a_seconds", "first family", []float64{0.1, 1})
		h.Observe(0.05)
		h.Observe(0.5)
		h.Observe(5)
		return r
	}
	var one, two strings.Builder
	if _, err := build().WriteTo(&one); err != nil {
		t.Fatal(err)
	}
	if _, err := build().WriteTo(&two); err != nil {
		t.Fatal(err)
	}
	if one.String() != two.String() {
		t.Fatalf("two identical registries rendered differently:\n%s\nvs\n%s", one.String(), two.String())
	}
	out := one.String()
	for _, want := range []string{
		"# TYPE a_seconds histogram",
		`a_seconds_bucket{le="0.1"} 1`,
		`a_seconds_bucket{le="1"} 2`,
		`a_seconds_bucket{le="+Inf"} 3`,
		"a_seconds_sum 5.55",
		"a_seconds_count 3",
		"# TYPE m_gauge gauge",
		"m_gauge 1.25",
		`z_total{op="a"} 2`,
		`z_total{op="b"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Index(out, "a_seconds") > strings.Index(out, "m_gauge") ||
		strings.Index(out, "m_gauge") > strings.Index(out, "z_total") {
		t.Fatalf("families not sorted:\n%s", out)
	}
}

func TestHandlerServesMetrics(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits_total", "hits").Add(3)
	srv := httptest.NewServer(NewDebugMux(r))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(string(body), "hits_total 3") {
		t.Fatalf("metrics body missing counter:\n%s", body)
	}
	// pprof index must be mounted too.
	pp, err := srv.Client().Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	pp.Body.Close()
	if pp.StatusCode != 200 {
		t.Fatalf("pprof index status %d", pp.StatusCode)
	}
}

func TestSpans(t *testing.T) {
	var mu sync.Mutex
	var got []Span
	ctx := WithExporter(context.Background(), func(s Span) {
		mu.Lock()
		got = append(got, s)
		mu.Unlock()
	})
	if !HasExporter(ctx) {
		t.Fatalf("armed context reports no exporter")
	}
	ctx, root := Start(ctx, "ingest")
	_, child := Start(ctx, "ingest.extract")
	child.SetAttr("days", "7")
	child.End()
	root.End()
	if len(got) != 2 {
		t.Fatalf("exported %d spans, want 2", len(got))
	}
	if got[0].Name != "ingest.extract" || got[0].Parent != "ingest" {
		t.Fatalf("child span = %+v", got[0])
	}
	if got[1].Name != "ingest" || got[1].Parent != "" {
		t.Fatalf("root span = %+v", got[1])
	}
	if len(got[0].Attrs) != 1 || got[0].Attrs[0] != (Attr{"days", "7"}) {
		t.Fatalf("child attrs = %v", got[0].Attrs)
	}
	if got[0].Duration < 0 || got[1].Duration < got[0].Duration {
		t.Fatalf("durations inconsistent: child %v, root %v", got[0].Duration, got[1].Duration)
	}
}

func TestSpansDisabledAllocateNothing(t *testing.T) {
	ctx := context.Background()
	if HasExporter(ctx) {
		t.Fatalf("bare context reports an exporter")
	}
	allocs := testing.AllocsPerRun(100, func() {
		c, s := Start(ctx, "noop")
		s.SetAttr("k", "v")
		s.End()
		if c != ctx {
			t.Fatalf("unarmed Start returned a new context")
		}
	})
	if allocs != 0 {
		t.Fatalf("unarmed span path allocates %v per op", allocs)
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("conc_total", "", "w", string(rune('a'+w%4)))
			h := r.Histogram("conc_seconds", "", nil)
			for i := 0; i < 500; i++ {
				c.Inc()
				h.Observe(float64(i) * 1e-4)
				if i%100 == 0 {
					r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	total := 0.0
	for _, sm := range r.Snapshot().Samples {
		if sm.Name == "conc_total" {
			total += sm.Value
		}
	}
	if total != 8*500 {
		t.Fatalf("concurrent counter total = %v, want %d", total, 8*500)
	}
	if h, ok := r.Snapshot().Histogram("conc_seconds"); !ok || h.Count != 8*500 {
		t.Fatalf("concurrent histogram count = %+v", h)
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
}
