package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
)

// TestTraceRingAssemblesChildren checks a root span arrives in the ring
// with its finished children attached and newest-first ordering holds.
func TestTraceRingAssemblesChildren(t *testing.T) {
	ring := NewTraceRing(4)
	ctx := WithExporter(context.Background(), ring.Export)

	for i := 0; i < 2; i++ {
		rctx, root := Start(ctx, fmt.Sprintf("query.run.%d", i))
		_, child := Start(rctx, "query.integrate")
		child.End()
		root.End()
	}

	traces := ring.Snapshot()
	if len(traces) != 2 {
		t.Fatalf("got %d traces, want 2", len(traces))
	}
	if traces[0].Root.Name != "query.run.1" || traces[1].Root.Name != "query.run.0" {
		t.Errorf("not newest-first: %s then %s", traces[0].Root.Name, traces[1].Root.Name)
	}
	newest := traces[0]
	if len(newest.Children) != 1 || newest.Children[0].Name != "query.integrate" {
		t.Fatalf("children = %+v, want one query.integrate", newest.Children)
	}
	if newest.Children[0].TraceID != newest.Root.TraceID {
		t.Error("child trace ID differs from root")
	}
	if newest.Children[0].ParentID != newest.Root.SpanID {
		t.Error("child parent ID does not point at root span")
	}
}

// TestTraceRingEviction checks the ring keeps only the last N roots.
func TestTraceRingEviction(t *testing.T) {
	ring := NewTraceRing(3)
	ctx := WithExporter(context.Background(), ring.Export)
	for i := 0; i < 10; i++ {
		_, root := Start(ctx, fmt.Sprintf("r%d", i))
		root.End()
	}
	traces := ring.Snapshot()
	if len(traces) != 3 {
		t.Fatalf("got %d traces, want 3", len(traces))
	}
	for i, want := range []string{"r9", "r8", "r7"} {
		if traces[i].Root.Name != want {
			t.Errorf("trace[%d] = %s, want %s", i, traces[i].Root.Name, want)
		}
	}
}

// TestTraceRingHandler checks the JSON surface renders the snapshot.
func TestTraceRingHandler(t *testing.T) {
	ring := NewTraceRing(2)
	ctx := WithExporter(context.Background(), ring.Export)
	rctx, root := Start(ctx, "query.run")
	root.SetAttr("strategy", "gui")
	_, child := Start(rctx, "query.redzones")
	child.End()
	root.End()

	rec := httptest.NewRecorder()
	ring.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
	var out []struct {
		Trace string `json:"trace"`
		Root  struct {
			Name  string            `json:"name"`
			Attrs map[string]string `json:"attrs"`
		} `json:"root"`
		Children []struct {
			Name string `json:"name"`
		} `json:"children"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, rec.Body.String())
	}
	if len(out) != 1 || out[0].Root.Name != "query.run" {
		t.Fatalf("unexpected payload: %s", rec.Body.String())
	}
	if out[0].Root.Attrs["strategy"] != "gui" {
		t.Errorf("root attrs lost: %s", rec.Body.String())
	}
	if len(out[0].Children) != 1 || out[0].Children[0].Name != "query.redzones" {
		t.Errorf("children wrong: %s", rec.Body.String())
	}
	if out[0].Trace != root.TraceHex() {
		t.Errorf("trace id = %s, want %s", out[0].Trace, root.TraceHex())
	}
}

// TestTraceRingConcurrent hammers the ring with concurrent exporters and
// snapshot readers; run under -race this is the satellite's ring hammer.
// Every observed trace must be fully assembled (children belong to the
// root's trace).
func TestTraceRingConcurrent(t *testing.T) {
	ring := NewTraceRing(8)
	ctx := WithExporter(context.Background(), ring.Export)
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})

	for g := 0; g < 4; g++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < 500; i++ {
				rctx, root := Start(ctx, "root")
				_, c1 := Start(rctx, "stage.a")
				c1.End()
				_, c2 := Start(rctx, "stage.b")
				c2.End()
				root.End()
			}
		}()
	}
	for g := 0; g < 2; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, tr := range ring.Snapshot() {
					for _, c := range tr.Children {
						if c.TraceID != tr.Root.TraceID {
							t.Error("torn trace: child from another root")
							return
						}
					}
				}
			}
		}()
	}
	writers.Wait()
	close(stop)
	readers.Wait()

	if got := len(ring.Snapshot()); got != 8 {
		t.Errorf("ring holds %d traces after hammer, want 8", got)
	}
}
