package obs

import "context"

// Introspection hooks. Like span exporters, these propagate through
// context.Context so a single request can opt into deep visibility without
// arming the whole process: the query EXPLAIN pipeline installs a MemoSink
// before walking the forest, and the forest emits one MemoEvent per
// memoized-level lookup it performs on behalf of that request. With no sink
// in the context every emit is one failed context lookup — the same
// zero-cost-when-disabled contract as spans.

// MemoEvent describes one memoized-level lookup inside the forest: which
// level slot was touched, whether it was served from cache (or coalesced
// onto an in-flight computation), and the forest version the lookup saw —
// enough for an EXPLAIN reader to tell a warm query from one that paid for
// integration, and to correlate the answer with a specific forest state.
type MemoEvent struct {
	// Level is the memoized level ("week" or "month").
	Level string
	// Index is the level slot (week or month number).
	Index int
	// Hit reports a cache hit (including coalescing onto another caller's
	// in-flight computation).
	Hit bool
	// Version is the forest version counter observed by the lookup.
	Version uint64
}

// MemoSink receives memo events. Sinks are called synchronously on the
// goroutine performing the lookup; a sink shared across goroutines must
// synchronize itself.
type MemoSink func(MemoEvent)

type memoSinkKey struct{}

// WithMemoSink arms ctx so forest memo lookups below it report into sink.
// A nil sink returns ctx unchanged.
func WithMemoSink(ctx context.Context, sink MemoSink) context.Context {
	if sink == nil {
		return ctx
	}
	return context.WithValue(ctx, memoSinkKey{}, sink)
}

// EmitMemo delivers ev to the context's memo sink, if any.
func EmitMemo(ctx context.Context, ev MemoEvent) {
	if sink, _ := ctx.Value(memoSinkKey{}).(MemoSink); sink != nil {
		sink(ev)
	}
}
