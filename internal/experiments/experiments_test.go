package experiments

import (
	"fmt"
	"strings"
	"testing"
)

func testEnv(t *testing.T) *Env {
	t.Helper()
	e, err := NewEnv(Small())
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestTableRender(t *testing.T) {
	tab := &Table{
		ID:     "x",
		Title:  "demo",
		Header: []string{"a", "bee"},
		Notes:  []string{"hello"},
	}
	tab.AddRow(1, 2.5)
	tab.AddRow("long-label", 12345.6)
	out := tab.Render()
	for _, needle := range []string{"== x: demo ==", "long-label", "12346", "note: hello"} {
		if !strings.Contains(out, needle) {
			t.Errorf("Render missing %q in:\n%s", needle, out)
		}
	}
	csv := tab.CSV()
	if !strings.HasPrefix(csv, "a,bee\n") {
		t.Errorf("CSV header: %q", csv)
	}
	if lines := strings.Count(csv, "\n"); lines != 3 {
		t.Errorf("CSV lines = %d", lines)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{0: "0", 12345: "12345", 12.34: "12.3", 0.5: "0.500"}
	for v, want := range cases {
		if got := formatFloat(v); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestFig14(t *testing.T) {
	e := testEnv(t)
	tabs := Fig14(e)
	if len(tabs) != 1 {
		t.Fatalf("tables = %d", len(tabs))
	}
	if len(tabs[0].Rows) != e.Cfg.Months {
		t.Errorf("rows = %d, want %d", len(tabs[0].Rows), e.Cfg.Months)
	}
	if tabs[0].Rows[0][0] != "D1" {
		t.Errorf("first dataset label = %q", tabs[0].Rows[0][0])
	}
}

func TestFig15And16Shapes(t *testing.T) {
	e := testEnv(t)
	tabs := Fig15(e)
	if len(tabs) != 2 {
		t.Fatalf("tables = %d, want 2 (fig15 + fig16)", len(tabs))
	}
	f15, f16 := tabs[0], tabs[1]
	if len(f15.Rows) != e.Cfg.Months {
		t.Fatalf("fig15 rows = %d", len(f15.Rows))
	}
	// Shape: OC slower than MC and AC on the last (cumulative) row.
	last := f15.Rows[len(f15.Rows)-1]
	mc, ac, oc := parseF(t, last[1]), parseF(t, last[2]), parseF(t, last[3])
	if oc <= mc || oc <= ac {
		t.Errorf("OC (%v) should dominate MC (%v) and AC (%v)", oc, mc, ac)
	}
	// Sizes: OC biggest, AC well under AE.
	lastS := f16.Rows[len(f16.Rows)-1]
	mcS, acS, ocS, aeS := parseF(t, lastS[1]), parseF(t, lastS[2]), parseF(t, lastS[3]), parseF(t, lastS[4])
	if ocS <= aeS {
		t.Errorf("OC model (%v KB) should exceed AE (%v KB): it materializes every reading's cells", ocS, aeS)
	}
	if acS >= aeS/5 {
		t.Errorf("AC (%v KB) should be a small fraction of AE (%v KB)", acS, aeS)
	}
	if mcS >= ocS {
		t.Errorf("MC (%v KB) should be far below OC (%v KB)", mcS, ocS)
	}
}

func TestFig17Shapes(t *testing.T) {
	e := testEnv(t)
	tabs := Fig17(e)
	if len(tabs) != 2 {
		t.Fatalf("tables = %d", len(tabs))
	}
	inputs := tabs[1]
	for _, row := range inputs.Rows {
		all, pru, gui := parseF(t, row[1]), parseF(t, row[2]), parseF(t, row[3])
		if pru > all || gui > all {
			t.Errorf("row %v: pruned strategies exceed All", row)
		}
		if gui < pru {
			t.Errorf("row %v: Gui (%v) should keep at least Pru's inputs (%v) on this workload", row, gui, pru)
		}
	}
}

func TestFig18And19Shapes(t *testing.T) {
	e := testEnv(t)
	for _, tabs := range [][]*Table{Fig18(e), Fig19(e)} {
		if len(tabs) != 2 {
			t.Fatalf("tables = %d", len(tabs))
		}
		for _, tab := range tabs {
			for _, row := range tab.Rows {
				for _, cell := range row[1:] {
					v := parseF(t, cell)
					if v < 0 || v > 1 {
						t.Errorf("%s row %v: %v outside [0,1]", tab.ID, row, v)
					}
				}
			}
		}
		// All's recall is 1 by construction.
		recall := tabs[1]
		for _, row := range recall.Rows {
			if parseF(t, row[1]) != 1 {
				t.Errorf("All recall = %v, want 1", row[1])
			}
		}
	}
}

func TestFig20Shapes(t *testing.T) {
	e := testEnv(t)
	tabs := Fig20(e)
	if len(tabs) != 2 {
		t.Fatalf("tables = %d", len(tabs))
	}
	for _, tab := range tabs {
		if len(tab.Rows) < 4 {
			t.Fatalf("%s rows = %d", tab.ID, len(tab.Rows))
		}
		for _, row := range tab.Rows {
			if parseF(t, row[1]) <= 0 {
				t.Errorf("%s: no micro-clusters at %v", tab.ID, row[0])
			}
		}
	}
	// Larger δt merges more: micro count at δt=80min ≤ at 15min.
	a := tabs[0]
	first := parseF(t, a.Rows[0][1])
	last := parseF(t, a.Rows[len(a.Rows)-1][1])
	if last > first {
		t.Errorf("micro/day grew with δt: %v -> %v", first, last)
	}
}

func TestFig21Shapes(t *testing.T) {
	e := testEnv(t)
	tabs := Fig21(e)
	if len(tabs) != 1 {
		t.Fatalf("tables = %d", len(tabs))
	}
	tab := tabs[0]
	if len(tab.Rows) != 10 {
		t.Fatalf("rows = %d, want 10 δsim values", len(tab.Rows))
	}
	// At low δsim the max balance function integrates at least as much
	// severity as min.
	row := tab.Rows[0]
	minV, maxV := parseF(t, row[1]), parseF(t, row[5])
	if maxV < minV {
		t.Errorf("max (%v) should integrate at least min (%v)", maxV, minV)
	}
}

func TestRegistryCoversOrder(t *testing.T) {
	for _, id := range Order {
		if _, ok := Registry[id]; !ok {
			t.Errorf("ordered experiment %q missing from registry", id)
		}
	}
	if len(Order) != len(Registry) {
		t.Errorf("Order (%d) and Registry (%d) out of sync", len(Order), len(Registry))
	}
}

func TestQueryRangesTruncated(t *testing.T) {
	e := testEnv(t) // 1 month × 7 days
	got := e.QueryRanges()
	if len(got) != 1 || got[0] != 7 {
		t.Errorf("QueryRanges = %v, want [7]", got)
	}
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	var v float64
	if _, err := sscan(s, &v); err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func sscan(s string, v *float64) (int, error) {
	// Strip the ~ and % decorations some cells carry.
	s = strings.TrimPrefix(s, "~")
	s = strings.TrimSuffix(s, "%")
	return fmt.Sscan(s, v)
}

func TestAblationsRun(t *testing.T) {
	e := testEnv(t)
	for _, id := range []string{"abl-extract", "abl-integrate", "abl-agg"} {
		tabs := Registry[id](e)
		if len(tabs) != 1 {
			t.Fatalf("%s tables = %d", id, len(tabs))
		}
		if len(tabs[0].Rows) == 0 {
			t.Errorf("%s produced no rows", id)
		}
	}
}

func TestAblExtractAgreement(t *testing.T) {
	e := testEnv(t)
	tabs := AblExtract(e)
	for _, n := range tabs[0].Notes {
		if strings.Contains(n, "WARNING") {
			t.Errorf("indexed and brute-force extraction disagreed: %s", n)
		}
	}
}

func TestAblAggregateRollupFaster(t *testing.T) {
	e := testEnv(t)
	tabs := AblAggregate(e)
	for _, row := range tabs[0].Rows {
		scan, rollup := parseF(t, row[1]), parseF(t, row[2])
		if rollup > scan {
			t.Errorf("rollup (%v µs) slower than scan (%v µs) at %s days", rollup, scan, row[0])
		}
	}
}
