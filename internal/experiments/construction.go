package experiments

import (
	"fmt"
	"time"

	"github.com/cpskit/atypical/internal/cluster"
	"github.com/cpskit/atypical/internal/cps"
	"github.com/cpskit/atypical/internal/cube"
	"github.com/cpskit/atypical/internal/detect"
	"github.com/cpskit/atypical/internal/storage"
)

// Fig14 reproduces the experiment-settings table: one row per monthly
// dataset with sensor count, reading count and atypical percentage.
func Fig14(e *Env) []*Table {
	t := &Table{
		ID:     "fig14",
		Title:  "Datasets (paper: 12 PeMS months, ~4,000 sensors, 3.3e7 readings, 2.3-4.0% atypical)",
		Header: []string{"dataset", "sensors", "readings", "atypical%", "events"},
	}
	for m := 0; m < e.Cfg.Months; m++ {
		ds := e.Dataset(m)
		t.AddRow(
			fmt.Sprintf("D%d", m+1),
			e.Net.NumSensors(),
			ds.NumReadings,
			fmt.Sprintf("~%.1f%%", ds.AtypicalPct()),
			len(ds.Truth),
		)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("thresholds: δs=%.3g δd=%.1fmi δt=%s δsim=%.2g g=%s",
			e.Cfg.DeltaS, e.Cfg.DeltaD, e.Cfg.DeltaT, e.Cfg.DeltaSim, e.Cfg.Balance))
	return []*Table{t}
}

// constructionCosts measures, for one month, the four Fig. 15 curves and the
// four Fig. 16 sizes.
type constructionCosts struct {
	prTime, ocTime, mcTime, acTime time.Duration
	ocSize, mcSize, acSize, aeSize int64
}

func (e *Env) measureMonth(m int) constructionCosts {
	ds := e.Dataset(m)
	var c constructionCosts

	// PR: the pre-processing scan selecting atypical records from the raw
	// reading stream.
	start := time.Now()
	atypical, _ := detect.Scan(ds.ForEachReading)
	c.prTime = time.Since(start)

	// OC: original CubeView aggregates every reading.
	oc := cube.NewCubeView(e.Net, e.Spec, e.Cfg.DaysPerMonth, nil)
	start = time.Now()
	ds.ForEachReading(oc.AddReading)
	c.ocTime = time.Since(start)
	c.ocSize = oc.SizeBytes()

	// MC: modified CubeView aggregates only the (pre-extracted) atypical
	// records.
	mc := cube.NewCubeView(e.Net, e.Spec, e.Cfg.DaysPerMonth, nil)
	start = time.Now()
	for _, r := range atypical.Records() {
		mc.AddRecord(r)
	}
	c.mcTime = time.Since(start)
	c.mcSize = mc.SizeBytes()

	// AC: atypical-cluster construction (Algorithm 1) on the atypical
	// records, per day as the forest stores them.
	var idgen cluster.IDGen
	var micros []*cluster.Cluster
	start = time.Now()
	cps.ForEachDay(atypical.SplitByDay(e.Spec), func(_ int, recs []cps.Record) {
		micros = append(micros, cluster.ExtractMicroClusters(&idgen, recs, e.neighbors, e.maxGap)...)
	})
	c.acTime = time.Since(start)
	c.acSize = storage.ClustersSize(micros)

	// AE: the serialized atypical events themselves (the holistic model AC
	// summarizes).
	var aeRecs []cps.Record
	aeRecs = append(aeRecs, atypical.Records()...)
	c.aeSize = storage.RecordsSize(aeRecs)
	return c
}

// Fig15 reproduces construction time vs number of datasets for OC
// (original CubeView), MC (modified CubeView), PR (pre-processing) and AC
// (atypical clusters). Times are cumulative over datasets, as in the paper.
func Fig15(e *Env) []*Table {
	t := &Table{
		ID:     "fig15",
		Title:  "Construction time vs #datasets (seconds; paper: MC,AC ≈ 10x faster than OC, PR ≈ OC)",
		Header: []string{"#datasets", "MC", "AC", "OC", "PR"},
	}
	s := &Table{
		ID:     "fig16",
		Title:  "Model size vs #datasets (KB; paper: MC smallest, AC ≈ 0.5-1% of AE)",
		Header: []string{"#datasets", "MC", "AC", "OC", "AE"},
	}
	var cum constructionCosts
	for m := 0; m < e.Cfg.Months; m++ {
		c := e.measureMonth(m)
		cum.prTime += c.prTime
		cum.ocTime += c.ocTime
		cum.mcTime += c.mcTime
		cum.acTime += c.acTime
		cum.ocSize += c.ocSize
		cum.mcSize += c.mcSize
		cum.acSize += c.acSize
		cum.aeSize += c.aeSize
		t.AddRow(m+1, cum.mcTime.Seconds(), cum.acTime.Seconds(), cum.ocTime.Seconds(), cum.prTime.Seconds())
		s.AddRow(m+1, kb(cum.mcSize), kb(cum.acSize), kb(cum.ocSize), kb(cum.aeSize))
	}
	t.Notes = append(t.Notes, "MC and AC consume the pre-extracted atypical stream (2-5% of readings); OC and PR scan every reading.")
	s.Notes = append(s.Notes, "AC stores spatial+temporal features per event; AE stores every atypical record.")
	return []*Table{t, s}
}

func kb(bytes int64) float64 { return float64(bytes) / 1024 }
