package experiments

import (
	"time"

	"github.com/cpskit/atypical/internal/cluster"
	"github.com/cpskit/atypical/internal/cps"
	"github.com/cpskit/atypical/internal/cube"
	"github.com/cpskit/atypical/internal/index"
	"github.com/cpskit/atypical/internal/query"
)

// AblExtract compares the two complexity regimes of Proposition 1: event
// extraction with the spatial/temporal index (O(N + n log n)) vs the
// brute-force pairwise scan (O(N + n²)), over growing daily record counts.
func AblExtract(e *Env) []*Table {
	t := &Table{
		ID:     "abl-extract",
		Title:  "Event extraction: indexed vs brute force (ms per day of records)",
		Header: []string{"records", "indexed(ms)", "brute(ms)", "events"},
	}
	ds := e.Dataset(0)
	byDay := ds.Atypical.SplitByDay(e.Spec)
	locs := e.Locs()

	// Concatenate days until each target size is reached.
	var pool []cps.Record
	for day := 0; day < e.Cfg.DaysPerMonth; day++ {
		pool = append(pool, byDay[day]...)
	}
	sizes := []int{500, 1000, 2000, 4000}
	for _, n := range sizes {
		if n > len(pool) {
			n = len(pool)
		}
		recs := cps.NewRecordSet(pool[:n]).Records()

		start := time.Now()
		fast := cluster.ExtractEvents(recs, e.neighbors, e.maxGap)
		fastMS := float64(time.Since(start).Microseconds()) / 1000

		start = time.Now()
		slow := cluster.ExtractEventsBrute(recs, locs, e.Cfg.DeltaD, e.maxGap)
		slowMS := float64(time.Since(start).Microseconds()) / 1000

		events := len(fast)
		if len(slow) != events {
			// The two variants are equivalence-tested; disagreement here
			// means a regression worth surfacing in the table.
			t.Notes = append(t.Notes, "WARNING: indexed and brute-force event counts disagree")
		}
		t.AddRow(len(recs), fastMS, slowMS, events)
		if n == len(pool) {
			break
		}
	}
	t.Notes = append(t.Notes, "the gap widens quadratically with the per-day record count")
	return []*Table{t}
}

// AblIntegrate compares Algorithm 3 implementations: posting-list candidate
// generation vs the literal quadratic rescan.
func AblIntegrate(e *Env) []*Table {
	t := &Table{
		ID:     "abl-integrate",
		Title:  "Cluster integration: posting-list candidates vs literal Algorithm 3 (ms)",
		Header: []string{"micros", "indexed(ms)", "naive(ms)", "macros"},
	}
	micros := flattenDays(e.MonthMicros(0))
	opts := e.IntegrateOptions()
	for _, n := range []int{100, 200, 400, 800} {
		if n > len(micros) {
			n = len(micros)
		}
		in := micros[:n]

		var g1 cluster.IDGen
		start := time.Now()
		fast := cluster.Integrate(&g1, in, opts)
		fastMS := float64(time.Since(start).Microseconds()) / 1000

		var g2 cluster.IDGen
		start = time.Now()
		slow := cluster.IntegrateNaive(&g2, in, opts)
		slowMS := float64(time.Since(start).Microseconds()) / 1000

		t.AddRow(n, fastMS, slowMS, len(fast))
		if len(fast) != len(slow) {
			t.Notes = append(t.Notes, "note: implementations reached different (valid) fixpoints at one size")
		}
		if n == len(micros) {
			break
		}
	}
	return []*Table{t}
}

// AblAggregate compares three ways to answer the bottom-up total severity
// F(W, T): a raw record scan (Equation 1 verbatim), the per-region rollup
// index, and the aggregate R-tree over per-sensor totals.
func AblAggregate(e *Env) []*Table {
	t := &Table{
		ID:     "abl-agg",
		Title:  "F(W,T) computation: scan vs rollup index vs aggregate R-trees (µs per query)",
		Header: []string{"days", "scan(µs)", "rollup(µs)", "rtree(µs)", "arbtree(µs)"},
	}
	ds := e.Dataset(0)
	recs := ds.Atypical.Records()
	regions := query.CityQuery(e.Net, e.Spec, 0, e.Cfg.DaysPerMonth, e.Cfg.DeltaS).Regions

	idx := cube.NewSeverityIndex(e.Net, e.Spec)
	idx.Add(recs)

	locs := e.Locs()
	tree := index.NewRTree(locs)
	weights := make([]float64, len(locs))
	for _, r := range recs {
		weights[r.Sensor] += float64(r.Severity)
	}
	arb := index.NewAggRTree(locs, recs, e.Spec, e.Cfg.DaysPerMonth)
	box := e.Net.Grid.Box

	const reps = 20
	for _, days := range []int{1, 7, e.Cfg.DaysPerMonth} {
		tr := cps.DayRange(e.Spec, 0, days)

		start := time.Now()
		for i := 0; i < reps; i++ {
			cube.FScan(e.Net, recs, regions, tr)
		}
		scanUS := float64(time.Since(start).Microseconds()) / reps

		start = time.Now()
		for i := 0; i < reps; i++ {
			idx.FTotal(regions, tr)
		}
		rollupUS := float64(time.Since(start).Microseconds()) / reps

		// The R-tree aggregates the month's per-sensor totals over the
		// whole box; it answers the spatial restriction, not the temporal
		// one, so it is only comparable at full range.
		start = time.Now()
		for i := 0; i < reps; i++ {
			tree.Aggregate(box, func(id cps.SensorID) float64 { return weights[id] })
		}
		rtreeUS := float64(time.Since(start).Microseconds()) / reps

		// The aggregate spatio-temporal R-tree (Papadias et al. style)
		// answers the box-and-day-range query directly.
		start = time.Now()
		for i := 0; i < reps; i++ {
			arb.Aggregate(box, 0, days)
		}
		arbUS := float64(time.Since(start).Microseconds()) / reps

		t.AddRow(days, scanUS, rollupUS, rtreeUS, arbUS)
	}
	t.Notes = append(t.Notes,
		"rollup answers day-aligned F in O(regions×days); rtree is spatial-only (whole-month weights); arbtree carries per-node per-day aggregates")
	return []*Table{t}
}

// AblMaterialize compares All-semantics query processing from raw
// micro-clusters against the partially materialized path that reuses
// memoized week-level macro-clusters (Section IV) — the second run pays
// only the final integration.
func AblMaterialize(e *Env) []*Table {
	t := &Table{
		ID:     "abl-materialize",
		Title:  "Query from micro-clusters vs materialized week levels (All semantics, ms)",
		Header: []string{"days", "micros(ms)", "mat-cold(ms)", "mat-warm(ms)", "warm-inputs"},
	}
	engine := e.QueryStack()
	for _, days := range e.QueryRanges() {
		q := query.CityQuery(e.Net, e.Spec, 0, days, e.Cfg.DeltaS)

		start := time.Now()
		engine.Run(q, query.All)
		microMS := float64(time.Since(start).Microseconds()) / 1000

		start = time.Now()
		engine.RunMaterialized(q) // integrates and memoizes the weeks
		coldMS := float64(time.Since(start).Microseconds()) / 1000

		start = time.Now()
		warm := engine.RunMaterialized(q)
		warmMS := float64(time.Since(start).Microseconds()) / 1000

		t.AddRow(days, microMS, coldMS, warmMS, warm.InputMicros)
	}
	t.Notes = append(t.Notes, "warm runs reuse the memoized week macro-clusters; Property 3 guarantees the same integrated result")
	return []*Table{t}
}
