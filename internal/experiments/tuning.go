package experiments

import (
	"fmt"
	"time"

	"github.com/cpskit/atypical/internal/cluster"
	"github.com/cpskit/atypical/internal/cps"
	"github.com/cpskit/atypical/internal/forest"
	"github.com/cpskit/atypical/internal/index"
)

// Fig20 reproduces the cluster-count parameter study: the number of
// micro-clusters (per day), weekly macro-clusters, monthly macro-clusters,
// and weekly/monthly significant clusters, as δt and δd vary. One month of
// data is used, as in Section V-C.
func Fig20(e *Env) []*Table {
	a := &Table{
		ID:     "fig20a",
		Title:  "#clusters vs δt (paper: macro counts fall as δt grows; significant counts stay stable)",
		Header: []string{"δt(min)", "micro/day", "macro(week)", "macro(month)", "sig(week)", "sig(month)"},
	}
	for _, dt := range []time.Duration{15 * time.Minute, 20 * time.Minute, 40 * time.Minute, 80 * time.Minute} {
		row := e.clusterCounts(e.Cfg.DeltaD, dt)
		a.AddRow(fmt.Sprintf("%.0f", dt.Minutes()), row.microPerDay, row.macroWeek, row.macroMonth, row.sigWeek, row.sigMonth)
	}
	b := &Table{
		ID:     "fig20b",
		Title:  "#clusters vs δd (paper: smaller influence than δt; significant counts robust)",
		Header: []string{"δd(mi)", "micro/day", "macro(week)", "macro(month)", "sig(week)", "sig(month)"},
	}
	for _, dd := range []float64{1.5, 3, 6, 12, 24} {
		row := e.clusterCounts(dd, e.Cfg.DeltaT)
		b.AddRow(fmt.Sprintf("%.1f", dd), row.microPerDay, row.macroWeek, row.macroMonth, row.sigWeek, row.sigMonth)
	}
	return []*Table{a, b}
}

type countRow struct {
	microPerDay float64
	macroWeek   float64
	macroMonth  int
	sigWeek     float64
	sigMonth    int
}

// clusterCounts extracts month 0 under (δd, δt) and counts clusters at each
// level of the forest.
func (e *Env) clusterCounts(deltaD float64, deltaT time.Duration) countRow {
	ds := e.Dataset(0)
	neighbors := e.neighbors
	//atyplint:ignore floatcmp comparing a configured parameter against its default, both assigned never computed
	if deltaD != e.Cfg.DeltaD {
		neighbors = index.NewNeighborIndex(e.Locs(), deltaD).NeighborLists()
	}
	maxGap := cluster.MaxWindowGap(deltaT, e.Spec.Width)

	var idgen cluster.IDGen
	f := forest.New(e.Spec, &idgen, e.IntegrateOptions(), e.Cfg.DaysPerMonth)
	totalMicros := 0
	days := 0
	cps.ForEachDay(ds.Atypical.SplitByDay(e.Spec), func(day int, recs []cps.Record) {
		micros := cluster.ExtractMicroClusters(&idgen, recs, neighbors, maxGap)
		f.AddDay(day, micros)
		totalMicros += len(micros)
		days++
	})

	n := e.Net.NumSensors()
	weekBound := cluster.SignificanceBound(e.Cfg.DeltaS, 7*e.Spec.PerDay(), n)
	monthBound := cluster.SignificanceBound(e.Cfg.DeltaS, e.Cfg.DaysPerMonth*e.Spec.PerDay(), n)

	weeks := e.Cfg.DaysPerMonth / forest.DaysPerWeek
	if weeks == 0 {
		weeks = 1
	}
	var macroWeek, sigWeek int
	for w := 0; w < weeks; w++ {
		cs := f.Week(w)
		macroWeek += len(cs)
		for _, c := range cs {
			if c.Significant(weekBound) {
				sigWeek++
			}
		}
	}
	month := f.Month(0)
	sigMonth := 0
	for _, c := range month {
		if c.Significant(monthBound) {
			sigMonth++
		}
	}
	return countRow{
		microPerDay: float64(totalMicros) / float64(maxIntE(days, 1)),
		macroWeek:   float64(macroWeek) / float64(weeks),
		macroMonth:  len(month),
		sigWeek:     float64(sigWeek) / float64(weeks),
		sigMonth:    sigMonth,
	}
}

// Fig21 reproduces the average severity of significant monthly clusters as
// a function of δsim for the five balance functions g.
func Fig21(e *Env) []*Table {
	t := &Table{
		ID:     "fig21",
		Title:  "Avg severity of significant clusters vs δsim (paper: max integrates most, min least; severity falls with δsim)",
		Header: []string{"δsim", "min", "har", "geo", "avg", "max"},
	}
	// Extract once at default thresholds; reuse across (g, δsim).
	leaves := flattenDays(e.MonthMicros(0))
	n := e.Net.NumSensors()
	bound := cluster.SignificanceBound(e.Cfg.DeltaS, e.Cfg.DaysPerMonth*e.Spec.PerDay(), n)

	for _, dsim := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0} {
		row := []any{fmt.Sprintf("%.1f", dsim)}
		for _, g := range cluster.Balances {
			var idgen cluster.IDGen
			opts := cluster.IntegrateOptions{
				SimThreshold: dsim,
				Balance:      g,
				Period:       cps.Window(e.Spec.PerDay()),
			}
			macros := cluster.Integrate(&idgen, leaves, opts)
			var sum cps.Severity
			count := 0
			for _, c := range macros {
				if c.Significant(bound) {
					sum += c.Severity()
					count++
				}
			}
			if count == 0 {
				row = append(row, 0.0)
			} else {
				row = append(row, float64(sum)/float64(count))
			}
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes, "severity unit: aggregated atypical minutes per significant monthly cluster")
	return []*Table{t}
}

func maxIntE(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Registry maps experiment ids to their functions. Fig. 15 and 16 share a
// sweep and are produced together.
var Registry = map[string]func(*Env) []*Table{
	"fig14":           Fig14,
	"fig15":           Fig15, // also emits fig16
	"fig17":           Fig17,
	"fig18":           Fig18,
	"fig19":           Fig19,
	"fig20":           Fig20,
	"fig21":           Fig21,
	"abl-extract":     AblExtract,
	"abl-integrate":   AblIntegrate,
	"abl-agg":         AblAggregate,
	"abl-materialize": AblMaterialize,
	"par-construct":   ParConstruct,
	"ext-stream":      ExtStream,
	"ext-predict":     ExtPredict,
	"ext-trust":       ExtTrust,
}

// Order lists experiment ids in presentation order: the paper's figures
// first, then the ablations of DESIGN.md §5.
var Order = []string{
	"fig14", "fig15", "fig17", "fig18", "fig19", "fig20", "fig21",
	"par-construct",
	"abl-extract", "abl-integrate", "abl-agg", "abl-materialize",
	"ext-stream", "ext-predict", "ext-trust",
}
