package experiments

import (
	"math"
	"time"

	"github.com/cpskit/atypical/internal/query"
	"github.com/cpskit/atypical/internal/shard"
)

// ShardQueryBench is the sharded-query measurement attached to the
// bench-quick artifact: the same week-long Guided query answered once from
// the single forest and once scatter-gathered across Shards in-process
// shards. Identical confirms the two answers agree (candidate and input
// counts, significant-cluster count, bit-exact severities) — the benchmark
// doubles as an equivalence smoke test, with the full byte-identity
// guarantee covered by the root package's golden and fuzz tests.
type ShardQueryBench struct {
	Shards      int     `json:"shards"`
	UnshardedS  float64 `json:"unsharded_s"`
	ShardedS    float64 `json:"sharded_s"`
	Significant int     `json:"significant"`
	Identical   bool    `json:"identical"`
}

// MeasureShardedQuery partitions the environment's query forest across n
// shards and times the unsharded versus the scatter-gathered answer to the
// same query. Macro-cluster IDs differ between the two runs (the shared
// generator keeps counting), so equivalence is checked on counts and
// bit-exact severities rather than raw bytes.
func MeasureShardedQuery(e *Env, n int) *ShardQueryBench {
	eng := e.QueryStack()
	m, err := shard.NewMap(e.Net.Grid, n)
	if err != nil {
		panic(err) // n >= 1 is the caller's contract
	}
	set := shard.NewSet(m, e.Net, e.Spec, eng.Gen, e.IntegrateOptions(), e.Cfg.DaysPerMonth)
	for _, day := range eng.Forest.Days() {
		set.AppendDay(day, eng.Forest.Day(day))
	}
	q := query.CityQuery(e.Net, e.Spec, 0, min(7, e.Cfg.QueryMonths*e.Cfg.DaysPerMonth), e.Cfg.DeltaS)

	start := time.Now()
	base := eng.Run(q, query.Gui)
	res := &ShardQueryBench{Shards: n, UnshardedS: time.Since(start).Seconds()}

	sharded := *eng
	sharded.Scatterer = shard.NewCoordinator(set.Backends(), nil)
	start = time.Now()
	shr := sharded.Run(q, query.Gui)
	res.ShardedS = time.Since(start).Seconds()
	res.Significant = len(shr.Significant)

	res.Identical = base.CandidateMicros == shr.CandidateMicros &&
		base.InputMicros == shr.InputMicros &&
		base.RedZones == shr.RedZones &&
		len(base.Significant) == len(shr.Significant)
	if res.Identical {
		for i := range base.Significant {
			if math.Float64bits(float64(base.Significant[i].Severity())) !=
				math.Float64bits(float64(shr.Significant[i].Severity())) {
				res.Identical = false
				break
			}
		}
	}
	return res
}
