package experiments

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"github.com/cpskit/atypical/internal/cluster"
	"github.com/cpskit/atypical/internal/cps"
	"github.com/cpskit/atypical/internal/cube"
	"github.com/cpskit/atypical/internal/obs"
	"github.com/cpskit/atypical/internal/query"
)

// ParStage holds one construction run's per-stage wall-clock seconds: the
// three offline phases the parallel pipeline shards (micro-cluster
// extraction, month-level integration, severity-index build).
type ParStage struct {
	Extract   float64 `json:"extract_s"`
	Integrate float64 `json:"integrate_s"`
	Severity  float64 `json:"severity_s"`
	Total     float64 `json:"total_s"`
}

// ParResult is the quick parallel-construction benchmark emitted by
// `atypbench -parjson` (and `make bench-quick`): the serial pipeline versus
// the worker-pool pipeline over the same month of records.
type ParResult struct {
	GOMAXPROCS int      `json:"gomaxprocs"`
	Workers    int      `json:"workers"`
	Sensors    int      `json:"sensors"`
	Records    int      `json:"records"`
	Serial     ParStage `json:"serial"`
	Parallel   ParStage `json:"parallel"`
	Speedup    float64  `json:"speedup"`
	// Metrics is a flattened obs snapshot from an instrumented query pass
	// over the constructed stack (one All/Pru/Gui week each) — the
	// bench-quick artifact doubling as an observability smoke test. JSON
	// marshals maps in sorted key order, so the artifact is deterministic
	// modulo timing-valued series.
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// ShardQuery is the sharded-query benchmark (see MeasureShardedQuery),
	// absent in artifacts written before sharding existed so the regression
	// gate stays nil-tolerant across the format change.
	ShardQuery *ShardQueryBench `json:"shard_query,omitempty"`
}

// queryMetrics runs one week-long query per strategy against an instrumented
// engine and returns the flattened metrics snapshot.
func (e *Env) queryMetrics() map[string]float64 {
	reg := obs.NewRegistry()
	engine := e.QueryStack()
	engine.Forest.SetObserver(reg)
	engine.Obs = query.NewMetrics(reg)
	q := query.CityQuery(e.Net, e.Spec, 0, min(7, e.Cfg.QueryMonths*e.Cfg.DaysPerMonth), e.Cfg.DeltaS)
	for s := query.All; s <= query.Gui; s++ {
		engine.Run(q, s)
	}
	return reg.Snapshot().Flatten()
}

// parStage runs one full offline construction of month 0. workers == 0 takes
// the legacy serial path; workers > 0 the sharded one.
func (e *Env) parStage(workers int) ParStage {
	ds := e.Dataset(0)
	byDay := ds.Atypical.SplitByDay(e.Spec)
	var days []cluster.DayRecords
	var slices [][]cps.Record
	cps.ForEachDay(byDay, func(day int, recs []cps.Record) {
		days = append(days, cluster.DayRecords{Day: day, Records: recs})
		slices = append(slices, recs)
	})

	var s ParStage
	var idgen cluster.IDGen

	start := time.Now()
	var perDay [][]*cluster.Cluster
	if workers == 0 {
		for _, d := range days {
			perDay = append(perDay, cluster.ExtractMicroClusters(&idgen, d.Records, e.neighbors, e.maxGap))
		}
	} else {
		var err error
		perDay, err = cluster.ExtractMicroClustersDays(context.Background(), &idgen, days, e.neighbors, e.maxGap, workers)
		if err != nil {
			panic(err) // background context cannot cancel
		}
	}
	s.Extract = time.Since(start).Seconds()

	var micros []*cluster.Cluster
	for _, cs := range perDay {
		micros = append(micros, cs...)
	}
	start = time.Now()
	if workers == 0 {
		cluster.Integrate(&idgen, micros, e.IntegrateOptions())
	} else {
		cluster.IntegrateParallel(&idgen, micros, e.IntegrateOptions(), workers)
	}
	s.Integrate = time.Since(start).Seconds()

	sev := cube.NewSeverityIndex(e.Net, e.Spec)
	start = time.Now()
	if workers == 0 {
		sev.Add(ds.Atypical.Records())
	} else {
		if err := sev.AddDays(context.Background(), slices, workers); err != nil {
			panic(err)
		}
	}
	s.Severity = time.Since(start).Seconds()
	s.Total = s.Extract + s.Integrate + s.Severity
	return s
}

// MeasureParallelConstruction runs the serial and the workers-wide parallel
// construction once each and reports the speedup. workers <= 0 selects
// GOMAXPROCS.
func MeasureParallelConstruction(e *Env, workers int) ParResult {
	procs := runtime.GOMAXPROCS(0)
	if workers <= 0 {
		workers = procs
	}
	res := ParResult{
		GOMAXPROCS: procs,
		Workers:    workers,
		Sensors:    e.Net.NumSensors(),
		Records:    e.Dataset(0).Atypical.Len(),
		Serial:     e.parStage(0),
		Parallel:   e.parStage(workers),
	}
	if res.Parallel.Total > 0 {
		res.Speedup = res.Serial.Total / res.Parallel.Total
	}
	res.Metrics = e.queryMetrics()
	return res
}

// ParConstruct is the Fig. 15 companion the paper does not plot: offline
// construction cost as the worker pool widens. On a single-core host the
// rows degenerate to ≈1× — the speedup column is only meaningful at
// GOMAXPROCS ≥ 2.
func ParConstruct(e *Env) []*Table {
	t := &Table{
		ID:     "par-construct",
		Title:  "Parallel construction (seconds; AC extraction + integration + severity index vs workers)",
		Header: []string{"workers", "extract", "integrate", "severity", "total", "speedup"},
	}
	serial := e.parStage(0)
	t.AddRow("serial", serial.Extract, serial.Integrate, serial.Severity, serial.Total, 1.0)
	seen := map[int]bool{}
	for _, w := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		if w < 1 || seen[w] {
			continue
		}
		seen[w] = true
		p := e.parStage(w)
		speedup := 0.0
		if p.Total > 0 {
			speedup = serial.Total / p.Total
		}
		t.AddRow(w, p.Extract, p.Integrate, p.Severity, p.Total, speedup)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("GOMAXPROCS=%d; speedup = serial total / parallel total on this host", runtime.GOMAXPROCS(0)),
		"extraction and severity are byte-identical to serial; integration is worker-count independent")
	return []*Table{t}
}
