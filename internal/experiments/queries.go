package experiments

import (
	"fmt"

	"github.com/cpskit/atypical/internal/eval"
	"github.com/cpskit/atypical/internal/query"
)

// strategies in the order the paper's legends use.
var strategies = []query.Strategy{query.All, query.Pru, query.Gui}

// Fig17 reproduces query efficiency vs query range: (a) wall-clock time and
// (b) the number of input micro-clusters (the I/O measure), for the three
// strategies over a whole-city query.
func Fig17(e *Env) []*Table {
	engine := e.QueryStack()
	a := &Table{
		ID:     "fig17a",
		Title:  "Query time vs range (seconds; paper: Gui ≈ 15-20% of All, close to Pru)",
		Header: []string{"days", "All", "Pru", "Gui"},
	}
	b := &Table{
		ID:     "fig17b",
		Title:  "Input micro-clusters vs range (paper: Gui prunes ~80% of All's inputs)",
		Header: []string{"days", "All", "Pru", "Gui"},
	}
	for _, days := range e.QueryRanges() {
		times := make([]float64, len(strategies))
		inputs := make([]int, len(strategies))
		for i, s := range strategies {
			q := query.CityQuery(e.Net, e.Spec, 0, days, e.Cfg.DeltaS)
			res := engine.Run(q, s)
			times[i] = res.Elapsed.Seconds()
			inputs[i] = res.InputMicros
		}
		a.AddRow(days, times[0], times[1], times[2])
		b.AddRow(days, inputs[0], inputs[1], inputs[2])
	}
	return []*Table{a, b}
}

// Fig18 reproduces precision and recall of significant clusters vs query
// range. Ground truth is the significant set of All (Section V-B protocol).
func Fig18(e *Env) []*Table {
	engine := e.QueryStack()
	a := &Table{
		ID:     "fig18a",
		Title:  "Precision vs range (paper: Pru highest, precision drops with range)",
		Header: []string{"days", "All", "Pru", "Gui"},
	}
	b := &Table{
		ID:     "fig18b",
		Title:  "Recall vs range (paper: All=1, Gui ≈ 1, Pru can fall below 0.5)",
		Header: []string{"days", "All", "Pru", "Gui"},
	}
	for _, days := range e.QueryRanges() {
		q := query.CityQuery(e.Net, e.Spec, 0, days, e.Cfg.DeltaS)
		pr := scoreStrategies(e, engine, q)
		a.AddRow(days, pr[0].Precision, pr[1].Precision, pr[2].Precision)
		b.AddRow(days, pr[0].Recall, pr[1].Recall, pr[2].Recall)
	}
	a.Notes = append(a.Notes, "precision = significant/returned macros; the Algorithm 4 lines 5-7 filter is off, as in the paper's runs")
	return []*Table{a, b}
}

// Fig19 reproduces precision and recall vs the severity threshold δs at a
// fixed 14-day range. The δs sweep is scaled to this deployment (see
// EXPERIMENTS.md): the paper's 2-20% on 4,076 sensors corresponds to
// 0.5-5% here.
func Fig19(e *Env) []*Table {
	engine := e.QueryStack()
	a := &Table{
		ID:     "fig19a",
		Title:  "Precision vs δs, 14-day query (paper: precision drops as δs grows)",
		Header: []string{"δs", "All", "Pru", "Gui"},
	}
	b := &Table{
		ID:     "fig19b",
		Title:  "Recall vs δs (paper: Pru recall rises with δs; Gui stays ≈ 1)",
		Header: []string{"δs", "All", "Pru", "Gui"},
	}
	days := 14
	if max := e.Cfg.QueryMonths * e.Cfg.DaysPerMonth; days > max {
		days = max
	}
	for _, ds := range []float64{0.005, 0.01, 0.015, 0.02, 0.03, 0.05} {
		q := query.CityQuery(e.Net, e.Spec, 0, days, ds)
		pr := scoreStrategies(e, engine, q)
		label := fmt.Sprintf("%.1f%%", ds*100)
		a.AddRow(label, pr[0].Precision, pr[1].Precision, pr[2].Precision)
		b.AddRow(label, pr[0].Recall, pr[1].Recall, pr[2].Recall)
	}
	return []*Table{a, b}
}

// scoreStrategies runs all three strategies on q and scores them against
// All's significant set.
func scoreStrategies(e *Env, engine *query.Engine, q query.Query) []eval.PR {
	results := make([]*query.Result, len(strategies))
	for i, s := range strategies {
		results[i] = engine.Run(q, s)
	}
	truth := results[0].Significant // All prunes nothing: its significant set is ground truth
	out := make([]eval.PR, len(strategies))
	for i, res := range results {
		out[i] = eval.Score(res.Macros, truth, res.Bound, e.Cfg.Balance)
	}
	return out
}
