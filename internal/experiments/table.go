// Package experiments regenerates every table and figure of the paper's
// evaluation (Section V) on the synthetic PeMS-like workload: one function
// per figure, each returning text tables with the same rows and series the
// paper plots. cmd/atypbench renders them; EXPERIMENTS.md records the
// paper-vs-measured comparison.
package experiments

import (
	"fmt"
	"strings"
)

// Table is one rendered experiment result.
type Table struct {
	// ID names the paper artifact, e.g. "fig15".
	ID string
	// Title is the caption.
	Title string
	// Header labels the columns; the first column is the x-axis.
	Header []string
	// Rows hold the cell values.
	Rows [][]string
	// Notes carry commentary (what the paper observed, what to look for).
	Notes []string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	case v >= 0.01:
		return fmt.Sprintf("%.3f", v)
	default:
		return fmt.Sprintf("%.2g", v)
	}
}

// Render formats the table as aligned monospaced text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV formats the table as comma-separated values (header + rows).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Header, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}
