package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/cpskit/atypical/internal/cluster"
	"github.com/cpskit/atypical/internal/cps"
	"github.com/cpskit/atypical/internal/predict"
	"github.com/cpskit/atypical/internal/stream"
	"github.com/cpskit/atypical/internal/trust"
)

// ExtStream measures the online event processor against batch extraction:
// identical clustering (severity and counts modulo midnight splits) at
// streaming throughput — the Section I "online analysis" requirement.
func ExtStream(e *Env) []*Table {
	t := &Table{
		ID:     "ext-stream",
		Title:  "Online vs batch event extraction (one month)",
		Header: []string{"mode", "events", "severity", "time(ms)", "records/s"},
	}
	ds := e.Dataset(0)
	recs := ds.Atypical.Records()

	// Batch: per-day extraction as the forest stores it.
	var idgen cluster.IDGen
	start := time.Now()
	batchCount := 0
	var batchSev cps.Severity
	for _, dayRecs := range ds.Atypical.SplitByDay(e.Spec) {
		for _, c := range cluster.ExtractMicroClusters(&idgen, dayRecs, e.neighbors, e.maxGap) {
			batchCount++
			batchSev += c.Severity()
		}
	}
	batchMS := float64(time.Since(start).Microseconds()) / 1000
	t.AddRow("batch", batchCount, float64(batchSev), batchMS, float64(len(recs))/batchMS*1000)

	// Stream: records arrive in window order; events close online.
	var streamCount int
	var streamSev cps.Severity
	proc, err := stream.New(stream.Config{
		Neighbors: e.neighbors,
		MaxGap:    e.maxGap,
		Emit: func(c *cluster.Cluster) {
			streamCount++
			streamSev += c.Severity()
		},
	}, &idgen)
	if err != nil {
		t.Notes = append(t.Notes, "stream init failed: "+err.Error())
		return []*Table{t}
	}
	start = time.Now()
	for _, r := range recs {
		if err := proc.Observe(r); err != nil {
			t.Notes = append(t.Notes, "stream error: "+err.Error())
			return []*Table{t}
		}
	}
	proc.Flush()
	streamMS := float64(time.Since(start).Microseconds()) / 1000
	t.AddRow("stream", streamCount, float64(streamSev), streamMS, float64(len(recs))/streamMS*1000)
	t.Notes = append(t.Notes,
		"severity must match exactly; the stream closes overnight events whole where the batch splits them at midnight")
	return []*Table{t}
}

// ExtPredict trains the recurrence predictor on the first three weeks of a
// month and scores next-day forecasts on the held-out week.
func ExtPredict(e *Env) []*Table {
	t := &Table{
		ID:     "ext-predict",
		Title:  "Event prediction (train 3 weeks, test held-out days)",
		Header: []string{"day", "class", "precision@50", "severity-coverage"},
	}
	trainDays := e.Cfg.DaysPerMonth * 3 / 4
	if trainDays < 1 {
		trainDays = 1
	}
	byDay := e.Dataset(0).Atypical.SplitByDay(e.Spec)
	monthMicros := e.MonthMicros(0)
	var trainMicros []*cluster.Cluster
	cps.ForEachDay(monthMicros, func(day int, micros []*cluster.Cluster) {
		if day < trainDays {
			trainMicros = append(trainMicros, micros...)
		}
	})
	var idgen cluster.IDGen
	macros := cluster.Integrate(&idgen, trainMicros, e.IntegrateOptions())
	model, err := predict.Train(macros, predict.Config{
		TrainingDays:  trainDays,
		Period:        e.Spec.PerDay(),
		MinRecurrence: 0.1,
	})
	if err != nil {
		t.Notes = append(t.Notes, "training failed: "+err.Error())
		return []*Table{t}
	}
	for day := trainDays; day < e.Cfg.DaysPerMonth; day++ {
		out := model.Evaluate(byDay[day], 50)
		class := "weekday"
		if day%7 >= 5 {
			class = "weekend"
		}
		t.AddRow(day, class, out.PrecisionAtK, out.SeverityCoverage)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d recurring patterns learned; weekend accuracy drops because recurring events are weekday-only", len(model.Patterns())))
	return []*Table{t}
}

// ExtTrust injects chattering faulty sensors and measures how cleanly the
// corroboration score separates them from healthy ones.
func ExtTrust(e *Env) []*Table {
	t := &Table{
		ID:     "ext-trust",
		Title:  "Trustworthiness analysis: injected faulty sensors vs healthy",
		Header: []string{"group", "sensors", "mean-trust", "min-trust", "max-trust"},
	}
	ds := e.Dataset(0)
	rng := rand.New(rand.NewSource(e.Cfg.Seed + 99))
	n := e.Net.NumSensors()
	faulty := map[cps.SensorID]bool{}
	noisy := append([]cps.Record(nil), ds.Atypical.Records()...)
	for len(faulty) < 5 {
		s := cps.SensorID(rng.Intn(n))
		if faulty[s] {
			continue
		}
		faulty[s] = true
		for i := 0; i < 60; i++ {
			noisy = append(noisy, cps.Record{
				Sensor:   s,
				Window:   cps.Window(rng.Intn(e.Cfg.DaysPerMonth * e.Spec.PerDay())),
				Severity: 2,
			})
		}
	}
	a, err := trust.New(trust.Config{Neighbors: e.neighbors, MaxGap: e.maxGap})
	if err != nil {
		t.Notes = append(t.Notes, "analyzer failed: "+err.Error())
		return []*Table{t}
	}
	scores := a.Scores(cps.NewRecordSet(noisy).Records())

	var stats [2]struct {
		n               int
		sum, minT, maxT float64
		initialized     bool
	}
	for _, s := range scores {
		idx := 0
		if faulty[s.Sensor] {
			idx = 1
		}
		g := &stats[idx]
		g.n++
		g.sum += s.Trust
		if !g.initialized || s.Trust < g.minT {
			g.minT = s.Trust
		}
		if !g.initialized || s.Trust > g.maxT {
			g.maxT = s.Trust
		}
		g.initialized = true
	}
	labels := [2]string{"healthy", "faulty(injected)"}
	for i, g := range stats {
		mean := 0.0
		if g.n > 0 {
			mean = g.sum / float64(g.n)
		}
		t.AddRow(labels[i], g.n, mean, g.minT, g.maxT)
	}
	t.Notes = append(t.Notes,
		"faulty sensors chatter at random, uncorroborated windows; some overlap real events and score mid-range")
	return []*Table{t}
}
