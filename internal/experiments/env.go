package experiments

import (
	"time"

	"github.com/cpskit/atypical/internal/cluster"
	"github.com/cpskit/atypical/internal/cps"
	"github.com/cpskit/atypical/internal/cube"
	"github.com/cpskit/atypical/internal/forest"
	"github.com/cpskit/atypical/internal/gen"
	"github.com/cpskit/atypical/internal/geo"
	"github.com/cpskit/atypical/internal/index"
	"github.com/cpskit/atypical/internal/query"
	"github.com/cpskit/atypical/internal/traffic"
)

// Config scopes the experiment suite. The defaults are a laptop-scale
// rendition of the paper's setup (Fig. 14): the paper's 4,076 sensors /
// 30-day months shrink to ~500 sensors / 28-day months, and δs scales down
// with deployment size (see EXPERIMENTS.md) so the significance machinery
// sits at the same operating point.
type Config struct {
	Sensors      int
	Months       int // datasets available for the construction sweep
	QueryMonths  int // datasets ingested for the query experiments
	DaysPerMonth int
	Seed         int64

	DeltaS   float64       // significance threshold δs
	DeltaD   float64       // distance threshold δd, miles
	DeltaT   time.Duration // time interval threshold δt
	DeltaSim float64       // similarity threshold δsim
	Balance  cluster.Balance
}

// Default returns the full harness configuration.
func Default() Config {
	return Config{
		Sensors:      400,
		Months:       12,
		QueryMonths:  3,
		DaysPerMonth: 28,
		Seed:         42,
		DeltaS:       0.02,
		DeltaD:       1.5,
		DeltaT:       15 * time.Minute,
		DeltaSim:     0.5,
		Balance:      cluster.Arithmetic,
	}
}

// Small returns a configuration sized for unit tests.
func Small() Config {
	cfg := Default()
	cfg.Sensors = 150
	cfg.Months = 3
	cfg.QueryMonths = 1
	cfg.DaysPerMonth = 7
	return cfg
}

// Env holds the state shared across experiments: the deployment, the
// generator, and memoized datasets and per-month extractions.
type Env struct {
	Cfg  Config
	Net  *traffic.Network
	Spec cps.WindowSpec
	Gen  *gen.Generator

	neighbors [][]cps.SensorID
	maxGap    int
	datasets  map[int]*gen.Dataset
	micros    map[int]map[int][]*cluster.Cluster // month -> day -> micros
	idgen     cluster.IDGen
}

// NewEnv builds the environment (network + generator; datasets on demand).
func NewEnv(cfg Config) (*Env, error) {
	netCfg := traffic.ScaledConfig(cfg.Sensors)
	netCfg.Seed = cfg.Seed
	net := traffic.GenerateNetwork(netCfg)
	spec := cps.DefaultSpec()
	gcfg := gen.DefaultConfig(net)
	gcfg.Seed = cfg.Seed
	gcfg.DaysPerMonth = cfg.DaysPerMonth
	g, err := gen.New(gcfg)
	if err != nil {
		return nil, err
	}
	locs := make([]geo.Point, net.NumSensors())
	for i, s := range net.Sensors {
		locs[i] = s.Loc
	}
	return &Env{
		Cfg:       cfg,
		Net:       net,
		Spec:      spec,
		Gen:       g,
		neighbors: index.NewNeighborIndex(locs, cfg.DeltaD).NeighborLists(),
		maxGap:    cluster.MaxWindowGap(cfg.DeltaT, spec.Width),
		datasets:  make(map[int]*gen.Dataset),
		micros:    make(map[int]map[int][]*cluster.Cluster),
	}, nil
}

// Dataset returns month m, generating it on first use.
func (e *Env) Dataset(m int) *gen.Dataset {
	if ds, ok := e.datasets[m]; ok {
		return ds
	}
	ds := e.Gen.Month(m)
	e.datasets[m] = ds
	return ds
}

// Locs returns sensor locations indexed by SensorID.
func (e *Env) Locs() []geo.Point {
	locs := make([]geo.Point, e.Net.NumSensors())
	for i, s := range e.Net.Sensors {
		locs[i] = s.Loc
	}
	return locs
}

// IntegrateOptions returns the configured Algorithm 3 options (time-of-day
// temporal identity, as in the paper's Fig. 5 features).
func (e *Env) IntegrateOptions() cluster.IntegrateOptions {
	return cluster.IntegrateOptions{
		SimThreshold: e.Cfg.DeltaSim,
		Balance:      e.Cfg.Balance,
		Period:       cps.Window(e.Spec.PerDay()),
	}
}

// MonthMicros extracts (and memoizes) the per-day micro-clusters of month m
// under the configured δd/δt.
func (e *Env) MonthMicros(m int) map[int][]*cluster.Cluster {
	if mm, ok := e.micros[m]; ok {
		return mm
	}
	ds := e.Dataset(m)
	mm := make(map[int][]*cluster.Cluster)
	cps.ForEachDay(ds.Atypical.SplitByDay(e.Spec), func(day int, recs []cps.Record) {
		mm[day] = cluster.ExtractMicroClusters(&e.idgen, recs, e.neighbors, e.maxGap)
	})
	e.micros[m] = mm
	return mm
}

// flattenDays concatenates a per-day micro-cluster partition in ascending
// day order, so experiment tables are reproducible run to run.
func flattenDays(byDay map[int][]*cluster.Cluster) []*cluster.Cluster {
	var out []*cluster.Cluster
	cps.ForEachDay(byDay, func(_ int, micros []*cluster.Cluster) {
		out = append(out, micros...)
	})
	return out
}

// QueryStack assembles the online query engine over the first QueryMonths
// datasets: forest of per-day micro-clusters plus the bottom-up severity
// index for red zones.
func (e *Env) QueryStack() *query.Engine {
	opts := e.IntegrateOptions()
	f := forest.New(e.Spec, &e.idgen, opts, e.Cfg.DaysPerMonth)
	sev := cube.NewSeverityIndex(e.Net, e.Spec)
	for m := 0; m < e.Cfg.QueryMonths; m++ {
		for day, micros := range e.MonthMicros(m) {
			f.AddDay(day, micros)
		}
		sev.Add(e.Dataset(m).Atypical.Records())
	}
	return &query.Engine{Net: e.Net, Forest: f, Severity: sev, Gen: &e.idgen}
}

// QueryRanges are the Fig. 17–18 time ranges in days, truncated to the
// ingested span.
func (e *Env) QueryRanges() []int {
	all := []int{7, 14, 21, 28, 56, 84}
	max := e.Cfg.QueryMonths * e.Cfg.DaysPerMonth
	var out []int
	for _, d := range all {
		if d <= max {
			out = append(out, d)
		}
	}
	if len(out) == 0 {
		out = []int{max}
	}
	return out
}
