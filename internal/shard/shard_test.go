package shard_test

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"github.com/cpskit/atypical/internal/cluster"
	"github.com/cpskit/atypical/internal/cps"
	"github.com/cpskit/atypical/internal/forest"
	"github.com/cpskit/atypical/internal/gen"
	"github.com/cpskit/atypical/internal/geo"
	"github.com/cpskit/atypical/internal/index"
	"github.com/cpskit/atypical/internal/obs"
	"github.com/cpskit/atypical/internal/query"
	"github.com/cpskit/atypical/internal/shard"
	"github.com/cpskit/atypical/internal/traffic"
)

// stack is the offline pipeline state the shard tests partition: a global
// forest over a deterministic synthetic month, plus everything needed to
// build per-shard forests of the same stream.
type stack struct {
	net   *traffic.Network
	spec  cps.WindowSpec
	f     *forest.Forest
	idgen *cluster.IDGen
	opts  cluster.IntegrateOptions
	days  int
}

// buildStack extracts a deterministic month of micro-clusters into a global
// forest (the internal/query pipeline fixture, minus the severity cube).
func buildStack(t testing.TB, sensors, days int) *stack {
	t.Helper()
	net := traffic.GenerateNetwork(traffic.ScaledConfig(sensors))
	spec := cps.DefaultSpec()
	cfg := gen.DefaultConfig(net)
	cfg.DaysPerMonth = days
	g, err := gen.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ds := g.Month(0)

	locs := make([]geo.Point, net.NumSensors())
	for i, s := range net.Sensors {
		locs[i] = s.Loc
	}
	neighbors := index.NewNeighborIndex(locs, 1.5).NeighborLists()
	maxGap := cluster.MaxWindowGap(15*time.Minute, spec.Width)

	idgen := &cluster.IDGen{}
	opts := cluster.IntegrateOptions{SimThreshold: 0.5, Balance: cluster.Arithmetic, Period: cps.Window(spec.PerDay())}
	f := forest.New(spec, idgen, opts, days)
	for day, recs := range ds.Atypical.SplitByDay(spec) {
		f.AddDay(day, cluster.ExtractMicroClusters(idgen, recs, neighbors, maxGap))
	}
	return &stack{net: net, spec: spec, f: f, idgen: idgen, opts: opts, days: days}
}

// cityQuery returns the whole-grid, whole-range query the scatter tests use.
func (s *stack) cityQuery() query.Query {
	return query.CityQuery(s.net, s.spec, 0, s.days, 0.05)
}

// newSet builds an n-shard Set fed with the stack's full stream.
func (s *stack) newSet(t testing.TB, n int) (*shard.Map, *shard.Set) {
	t.Helper()
	m, err := shard.NewMap(s.net.Grid, n)
	if err != nil {
		t.Fatal(err)
	}
	set := shard.NewSet(m, s.net, s.spec, s.idgen, s.opts, s.days)
	for _, day := range s.f.Days() {
		set.AppendDay(day, s.f.Day(day))
	}
	return m, set
}

func TestMapDeterministicCoveringDisjoint(t *testing.T) {
	grid := traffic.GenerateNetwork(traffic.ScaledConfig(150)).Grid
	d := grid.NumDistricts()
	for _, n := range []int{1, 2, 3, 8, d, d + 5, 64} {
		m1, err := shard.NewMap(grid, n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		m2, _ := shard.NewMap(grid, n)
		if m1.NumShards() != n {
			t.Fatalf("n=%d: NumShards=%d", n, m1.NumShards())
		}
		if want := n > d; m1.Hashed() != want {
			t.Errorf("n=%d (districts=%d): Hashed=%v, want %v", n, d, m1.Hashed(), want)
		}
		seen := make([]bool, grid.NumRegions())
		for s := 0; s < n; s++ {
			for _, r := range m1.Regions(s) {
				if seen[r] {
					t.Fatalf("n=%d: region %d assigned twice", n, r)
				}
				seen[r] = true
				if m1.ShardOf(r) != s {
					t.Fatalf("n=%d: Regions(%d) and ShardOf(%d) disagree", n, s, r)
				}
			}
		}
		for r, ok := range seen {
			if !ok {
				t.Fatalf("n=%d: region %d unassigned", n, r)
			}
			if m1.ShardOf(geo.RegionID(r)) != m2.ShardOf(geo.RegionID(r)) {
				t.Fatalf("n=%d: two maps over the same grid disagree on region %d", n, r)
			}
		}
	}
	if _, err := shard.NewMap(grid, 0); !errors.Is(err, shard.ErrBadConfig) {
		t.Fatalf("NewMap(0) = %v, want ErrBadConfig", err)
	}
}

func TestMapNoRegionAndOutOfRange(t *testing.T) {
	grid := traffic.GenerateNetwork(traffic.ScaledConfig(120)).Grid
	m, err := shard.NewMap(grid, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.ShardOf(geo.NoRegion); got != 0 {
		t.Errorf("ShardOf(NoRegion) = %d, want 0", got)
	}
	if got := m.ShardOf(geo.RegionID(grid.NumRegions() + 7)); got != 0 {
		t.Errorf("ShardOf(out of range) = %d, want 0", got)
	}
}

func TestSetRoutesEverythingToItsHomeShard(t *testing.T) {
	st := buildStack(t, 150, 3)
	m, set := st.newSet(t, 3)
	q := st.cityQuery()
	total := 0
	for i := 0; i < m.NumShards(); i++ {
		for _, c := range set.Forest(i).MicrosInRange(q.Time) {
			total++
			if h := m.HomeShard(st.net, c); h != i {
				t.Fatalf("cluster %d stored on shard %d, home %d", c.ID, i, h)
			}
		}
	}
	want := len(st.f.MicrosInRange(q.Time))
	if total != want || want == 0 {
		t.Fatalf("shards hold %d micros, global forest %d", total, want)
	}
}

// expectedCandidates is the unsharded candidates stage: micros in range
// touching the region set.
func expectedCandidates(st *stack, q query.Query) []*cluster.Cluster {
	inRegion := map[geo.RegionID]bool{}
	for _, r := range q.Regions {
		inRegion[r] = true
	}
	var out []*cluster.Cluster
	for _, c := range st.f.MicrosInRange(q.Time) {
		if query.Touches(st.net, c, inRegion) {
			out = append(out, c)
		}
	}
	return out
}

func TestCoordinatorGatherEqualsUnshardedCandidates(t *testing.T) {
	st := buildStack(t, 150, 3)
	q := st.cityQuery()
	want := expectedCandidates(st, q)
	if len(want) == 0 {
		t.Fatal("no candidates; workload broken")
	}
	sort.Slice(want, func(i, j int) bool { return want[i].ID < want[j].ID })
	for _, n := range []int{1, 2, 8} {
		_, set := st.newSet(t, n)
		coord := shard.NewCoordinator(set.Backends(), nil)
		results, info, err := coord.Scatter(context.Background(), q.Time, q.Regions)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(info.Failed) != 0 || info.Shards != n {
			t.Fatalf("n=%d: info = %+v", n, info)
		}
		var got []*cluster.Cluster
		for _, r := range results {
			got = append(got, r.Candidates...)
		}
		sort.Slice(got, func(i, j int) bool { return got[i].ID < got[j].ID })
		if len(got) != len(want) {
			t.Fatalf("n=%d: gathered %d candidates, want %d", n, len(got), len(want))
		}
		for i := range got {
			// Local backends share pointers with the forest: identity, not
			// just equality.
			if got[i] != want[i] {
				t.Fatalf("n=%d: candidate %d differs", n, i)
			}
		}
	}
}

// flaky is a fake Backend failing its first `fails` Candidates calls.
type flaky struct {
	name  string
	fails int
	calls int
}

func (f *flaky) Name() string { return f.name }

func (f *flaky) Candidates(ctx context.Context, tr cps.TimeRange, regions []geo.RegionID) ([]*cluster.Cluster, error) {
	f.calls++
	if f.calls <= f.fails {
		return nil, fmt.Errorf("simulated failure %d", f.calls)
	}
	return nil, nil
}

func (f *flaky) Ready(ctx context.Context) error {
	if f.fails > 0 && f.calls <= f.fails {
		return errors.New("not ready")
	}
	return nil
}

func TestCoordinatorRetryPartialAndAllFailed(t *testing.T) {
	reg := obs.NewRegistry()
	good := &flaky{name: "shard0"}
	retried := &flaky{name: "shard1", fails: 1}
	dead := &flaky{name: "shard2", fails: 1 << 30}
	coord := shard.NewCoordinator([]shard.Backend{good, retried, dead}, reg)

	_, info, err := coord.Scatter(context.Background(), cps.TimeRange{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Failed) != 1 || info.Failed[0] != "shard2" {
		t.Fatalf("Failed = %v, want [shard2]", info.Failed)
	}
	snap := reg.Snapshot()
	counter := func(name, shardName string) float64 {
		v, _ := snap.Value(name, "shard", shardName)
		return v
	}
	for _, tc := range []struct {
		name, shard string
		want        float64
	}{
		{"atyp_shard_queries_total", "shard0", 1},
		{"atyp_shard_queries_total", "shard1", 1},
		{"atyp_shard_queries_total", "shard2", 1},
		{"atyp_shard_retries_total", "shard0", 0},
		{"atyp_shard_retries_total", "shard1", 1},
		{"atyp_shard_retries_total", "shard2", 1},
		{"atyp_shard_failures_total", "shard1", 0},
		{"atyp_shard_failures_total", "shard2", 1},
	} {
		if got := counter(tc.name, tc.shard); got != tc.want {
			t.Errorf("%s{shard=%s} = %v, want %v", tc.name, tc.shard, got, tc.want)
		}
	}

	allDead := shard.NewCoordinator([]shard.Backend{
		&flaky{name: "a", fails: 1 << 30}, &flaky{name: "b", fails: 1 << 30},
	}, nil)
	if _, _, err := allDead.Scatter(context.Background(), cps.TimeRange{}, nil); !errors.Is(err, shard.ErrAllShardsFailed) {
		t.Fatalf("all-dead scatter = %v, want ErrAllShardsFailed", err)
	}
	if _, _, err := shard.NewCoordinator(nil, nil).Scatter(context.Background(), cps.TimeRange{}, nil); !errors.Is(err, shard.ErrAllShardsFailed) {
		t.Fatalf("zero-backend scatter = %v, want ErrAllShardsFailed", err)
	}

	sts := coord.Ready(context.Background())
	if len(sts) != 3 || sts[0].Err != nil || sts[1].Err != nil || sts[2].Err == nil {
		t.Fatalf("Ready = %+v", sts)
	}
}

func TestHTTPBackendRoundTripAndFailure(t *testing.T) {
	st := buildStack(t, 150, 3)
	q := st.cityQuery()
	m, err := shard.NewMap(st.net.Grid, 2)
	if err != nil {
		t.Fatal(err)
	}
	view := shard.NewLocalView("shard0", st.net, func() *forest.Forest { return st.f }, m, 0)
	mux := http.NewServeMux()
	mux.Handle(shard.QueryPath, shard.NewHandler(view))
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) { fmt.Fprintln(w, "ready") })
	srv := httptest.NewServer(mux)
	defer srv.Close()

	h := shard.NewHTTP("shard0", srv.URL, srv.Client())
	got, err := h.Candidates(context.Background(), q.Time, q.Regions)
	if err != nil {
		t.Fatal(err)
	}
	want, err := view.Candidates(context.Background(), q.Time, q.Regions)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("shard 0 owns no candidates; round-trip check is vacuous")
	}
	if len(got) != len(want) {
		t.Fatalf("wire returned %d candidates, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].ID != want[i].ID || got[i].Micros != want[i].Micros ||
			len(got[i].SF) != len(want[i].SF) || len(got[i].TF) != len(want[i].TF) {
			t.Fatalf("candidate %d shape differs over the wire", i)
		}
		if math.Float64bits(float64(got[i].Severity())) != math.Float64bits(float64(want[i].Severity())) {
			t.Fatalf("candidate %d severity not bit-exact over the wire", i)
		}
	}
	if err := h.Ready(context.Background()); err != nil {
		t.Fatalf("Ready = %v", err)
	}

	// A server without the endpoint (404) classifies as unavailable; a dead
	// server errors without the sentinel.
	bare := httptest.NewServer(http.NewServeMux())
	hMissing := shard.NewHTTP("shardX", bare.URL, bare.Client())
	if _, err := hMissing.Candidates(context.Background(), q.Time, nil); !errors.Is(err, shard.ErrUnavailable) {
		t.Fatalf("missing endpoint = %v, want ErrUnavailable", err)
	}
	if err := hMissing.Ready(context.Background()); !errors.Is(err, shard.ErrUnavailable) {
		t.Fatalf("missing readyz = %v, want ErrUnavailable", err)
	}
	bare.Close()
	if _, err := hMissing.Candidates(context.Background(), q.Time, nil); err == nil {
		t.Fatal("dead server answered")
	}
}
