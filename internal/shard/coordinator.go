package shard

import (
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/cpskit/atypical/internal/cps"
	"github.com/cpskit/atypical/internal/geo"
	"github.com/cpskit/atypical/internal/obs"
	"github.com/cpskit/atypical/internal/par"
	"github.com/cpskit/atypical/internal/query"
)

// ErrAllShardsFailed reports a scatter in which no shard answered: with zero
// candidates from zero shards the coordinator cannot distinguish "nothing
// matched" from "everything is down", so the run fails loudly instead of
// returning a confidently empty answer.
var ErrAllShardsFailed = errors.New("shard: all shards failed")

// Coordinator fans the candidates stage of a query out to shard backends —
// concurrently, via internal/par — and gathers the answers. It implements
// query.Scatterer.
//
// Failure semantics: a shard that errors is retried once; a shard that
// fails the retry too is named in ScatterInfo.Failed and its (missing)
// candidates make the run explicitly partial — never a silent truncation.
// Only when every shard fails does Scatter return an error. Context
// cancellation is different: it aborts the whole scatter immediately.
type Coordinator struct {
	backends []Backend
	om       *coordMetrics
}

// coordMetrics holds the coordinator's pre-resolved per-shard metric
// handles. nil disables instrumentation (obs handles are nil-safe, but the
// containing struct keeps the wiring in one place).
type coordMetrics struct {
	queries  []*obs.Counter
	failures []*obs.Counter
	retries  []*obs.Counter
}

// NewCoordinator wires a coordinator over the backends, registering
// per-shard counters on r (nil r disables metrics):
//
//	atyp_shard_queries_total{shard}  scatters reaching the shard
//	atyp_shard_retries_total{shard}  first-attempt failures retried
//	atyp_shard_failures_total{shard} shards lost after retry (partial runs)
func NewCoordinator(backends []Backend, r *obs.Registry) *Coordinator {
	c := &Coordinator{backends: backends}
	if r != nil {
		m := &coordMetrics{}
		for _, b := range backends {
			m.queries = append(m.queries, r.Counter("atyp_shard_queries_total",
				"Per-shard scatter fan-outs.", "shard", b.Name()))
			m.retries = append(m.retries, r.Counter("atyp_shard_retries_total",
				"Per-shard first-attempt failures that were retried.", "shard", b.Name()))
			m.failures = append(m.failures, r.Counter("atyp_shard_failures_total",
				"Per-shard failures after retry; each one marks a partial query result.", "shard", b.Name()))
		}
		c.om = m
	}
	return c
}

// Backends returns the coordinator's backends in scatter order.
func (c *Coordinator) Backends() []Backend { return c.backends }

// NumShards implements query.Scatterer.
func (c *Coordinator) NumShards() int { return len(c.backends) }

// Scatter implements query.Scatterer: query every shard concurrently (a
// shard not overlapping W simply answers empty — cheaper than a directory,
// and immune to clusters homed on one shard touching regions owned by
// another), retry each failure once, and report survivors plus the failed
// set in deterministic scatter order.
func (c *Coordinator) Scatter(ctx context.Context, tr cps.TimeRange, regions []geo.RegionID) ([]query.ShardResult, query.ScatterInfo, error) {
	n := len(c.backends)
	if n == 0 {
		return nil, query.ScatterInfo{}, ErrAllShardsFailed
	}
	results := make([]query.ShardResult, n)
	failed := make([]error, n)
	stats := make([]query.ShardStat, n)
	err := par.Do(ctx, n, n, func(i int) error {
		b := c.backends[i]
		began := time.Now()
		stats[i] = query.ShardStat{Shard: b.Name()}
		defer func() { stats[i].Duration = time.Since(began) }()
		sctx, sp := obs.Start(ctx, "shard.query")
		sp.SetAttr("shard", b.Name())
		defer sp.End()
		if c.om != nil {
			c.om.queries[i].Inc()
		}
		cs, err := b.Candidates(sctx, tr, regions)
		if err != nil && ctx.Err() == nil {
			if c.om != nil {
				c.om.retries[i].Inc()
			}
			stats[i].Retried = true
			cs, err = b.Candidates(sctx, tr, regions)
		}
		if err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return cerr // cancellation aborts the scatter
			}
			if c.om != nil {
				c.om.failures[i].Inc()
			}
			stats[i].Failed = true
			failed[i] = err
			return nil // partial, not fatal
		}
		results[i] = query.ShardResult{Shard: b.Name(), Candidates: cs}
		return nil
	})
	if err != nil {
		return nil, query.ScatterInfo{}, err
	}
	info := query.ScatterInfo{Shards: n, PerShard: stats}
	var ok []query.ShardResult
	for i, b := range c.backends {
		if failed[i] != nil {
			info.Failed = append(info.Failed, b.Name())
			continue
		}
		ok = append(ok, results[i])
	}
	if len(ok) == 0 {
		return nil, info, fmt.Errorf("%w: %d shards, first error: %v", ErrAllShardsFailed, n, firstErr(failed))
	}
	return ok, info, nil
}

func firstErr(errs []error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// Status is one shard's readiness report.
type Status struct {
	Shard string
	Err   error // nil = ready
}

// Ready probes every backend concurrently and reports per-shard status in
// scatter order (the /readyz surface when sharding is enabled).
func (c *Coordinator) Ready(ctx context.Context) []Status {
	out := make([]Status, len(c.backends))
	for i, b := range c.backends {
		// Prefill so a cancelled probe still reports every shard by name.
		out[i] = Status{Shard: b.Name(), Err: ctx.Err()}
	}
	_ = par.Do(ctx, len(c.backends), len(c.backends), func(i int) error {
		out[i].Err = c.backends[i].Ready(ctx)
		return nil
	})
	return out
}
