// Package shard partitions the micro-cluster forest across shards and
// answers Q(W, T) by scatter-gather: every shard reports its candidate
// micro-clusters in range (the candidates stage of a query), and the
// coordinator re-establishes the canonical single-forest order before the
// unchanged strategy pipeline runs once at the coordinator. The paper's
// algebra licenses the split — SF/TF features compose algebraically
// (Property 2) and macro-cluster merging is commutative and associative
// (Property 3) — and gathering *candidates* rather than partial macros makes
// the answer byte-identical to the unsharded one rather than merely
// equivalent: integration sees exactly the same inputs in exactly the same
// order.
//
// Two backends serve a shard: Local (an in-process forest slice, or a
// home-filtered view over a full forest) and HTTP (a process-separated shard
// behind the hardened atypserve serve path, speaking the exact wire codec of
// internal/storage).
package shard

import (
	"errors"
	"fmt"
	"hash/fnv"

	"github.com/cpskit/atypical/internal/cluster"
	"github.com/cpskit/atypical/internal/geo"
	"github.com/cpskit/atypical/internal/traffic"
)

// Map deterministically assigns every pre-defined region — and through
// regions, every micro-cluster — to exactly one of n shards. Assignment is
// district-granular: all regions of a district land on the same shard, so
// the spatial locality the grid's coarse districts encode survives the
// split. Two policies cover the two regimes:
//
//   - geo split (n ≤ districts): district d goes to shard d·n/D, carving the
//     district sequence into n contiguous, near-equal runs.
//   - hash fallback (n > districts): district d goes to FNV-1a(d) mod n —
//     contiguous runs can no longer fill every shard, so a hash spreads
//     districts instead.
//
// Either way the map is a pure function of (grid shape, n): every process
// that builds a Map over the same deployment agrees on it without
// coordination, which is what lets HTTP shard servers answer for "their"
// slice while the coordinator routes without a directory service. Query
// correctness never depends on the placement policy — the coordinator
// scatters to every shard and re-sorts the union — so the policy is free to
// chase locality.
type Map struct {
	n        int
	hashed   bool
	byRegion []int // region ID → shard
	regions  [][]geo.RegionID
}

// ErrBadConfig reports an invalid sharding parameter (count, index).
var ErrBadConfig = errors.New("shard: invalid configuration")

// NewMap builds the shard map for n shards over the grid's regions.
func NewMap(grid *geo.Grid, n int) (*Map, error) {
	if n < 1 {
		return nil, fmt.Errorf("%w: shard count %d < 1", ErrBadConfig, n)
	}
	d := grid.NumDistricts()
	m := &Map{
		n:        n,
		hashed:   n > d,
		byRegion: make([]int, grid.NumRegions()),
		regions:  make([][]geo.RegionID, n),
	}
	for dist := 0; dist < d; dist++ {
		s := dist * n / d
		if m.hashed {
			h := fnv.New32a()
			var b [4]byte
			b[0], b[1], b[2], b[3] = byte(dist), byte(dist>>8), byte(dist>>16), byte(dist>>24)
			h.Write(b[:])
			s = int(h.Sum32() % uint32(n))
		}
		for _, r := range grid.DistrictRegions(dist) {
			m.byRegion[r] = s
			m.regions[s] = append(m.regions[s], r)
		}
	}
	return m, nil
}

// NumShards returns the shard count n.
func (m *Map) NumShards() int { return m.n }

// Hashed reports whether the hash fallback was selected (n > districts).
func (m *Map) Hashed() bool { return m.hashed }

// ShardOf returns the shard owning region r. The out-of-grid sentinel
// NoRegion — sensors outside every region — maps to shard 0, so every
// micro-cluster has exactly one home.
func (m *Map) ShardOf(r geo.RegionID) int {
	if r == geo.NoRegion || int(r) >= len(m.byRegion) {
		return 0
	}
	return m.byRegion[r]
}

// Regions returns the regions owned by shard s, ascending by ID.
func (m *Map) Regions(s int) []geo.RegionID { return m.regions[s] }

// HomeShard returns the shard owning micro-cluster c: the shard of the
// region of c's lowest sensor ID (SF is sorted ascending, so the choice is
// deterministic and independent of construction order). A featureless
// cluster homes on shard 0.
func (m *Map) HomeShard(net *traffic.Network, c *cluster.Cluster) int {
	if len(c.SF) == 0 {
		return 0
	}
	return m.ShardOf(net.Sensor(c.SF[0].Key).Region)
}
