package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"github.com/cpskit/atypical/internal/cluster"
	"github.com/cpskit/atypical/internal/cps"
	"github.com/cpskit/atypical/internal/geo"
	"github.com/cpskit/atypical/internal/obs"
	"github.com/cpskit/atypical/internal/storage"
)

// The HTTP shard protocol: the coordinator POSTs a small JSON request to
// /shard/query and the shard answers with the exact binary cluster codec
// (storage.WriteClustersExact) — severities travel as raw float64 bits, so
// the gathered clusters are bit-identical to the shard's own and the
// coordinator's final answer is byte-identical to an unsharded run. JSON on
// the way in (tiny, debuggable), binary on the way out (the bulk).

// QueryPath is the shard query endpoint a shard server mounts.
const QueryPath = "/shard/query"

// ErrUnavailable reports a shard server that answered the wire protocol
// with a non-OK status (shedding, not ready, or a server-side failure).
var ErrUnavailable = errors.New("shard: unavailable")

// wireRequest is the JSON body of a shard query.
type wireRequest struct {
	From    int64   `json:"from"`
	To      int64   `json:"to"`
	Regions []int32 `json:"regions"`
}

// maxWireRequest clamps the request body a shard server will read.
const maxWireRequest = 8 << 20

// HTTP is a Backend served by a remote shard process over the hardened
// atypserve path (deadlines, shedding, readiness gating upstream of the
// handler).
type HTTP struct {
	name   string
	base   string // e.g. "http://host:port", no trailing slash
	client *http.Client
}

// DefaultHTTPTimeout bounds one shard request when the caller's context
// carries no earlier deadline.
const DefaultHTTPTimeout = 30 * time.Second

// NewHTTP returns an HTTP backend for the shard server at base. A nil
// client gets a dedicated one with DefaultHTTPTimeout.
func NewHTTP(name, base string, client *http.Client) *HTTP {
	if client == nil {
		client = &http.Client{Timeout: DefaultHTTPTimeout}
	}
	return &HTTP{name: name, base: base, client: client}
}

// Name implements Backend.
func (h *HTTP) Name() string { return h.name }

// Candidates implements Backend over the wire protocol.
func (h *HTTP) Candidates(ctx context.Context, tr cps.TimeRange, regions []geo.RegionID) ([]*cluster.Cluster, error) {
	wr := wireRequest{From: int64(tr.From), To: int64(tr.To), Regions: make([]int32, len(regions))}
	for i, r := range regions {
		wr.Regions[i] = int32(r)
	}
	body, err := json.Marshal(wr)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, h.base+QueryPath, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	// Propagate the coordinator's trace across the hop: the shard server
	// extracts the header and its spans adopt the same trace ID, so
	// /debug/traces stitches the scatter end to end.
	obs.InjectTraceparent(ctx, req.Header)
	resp, err := h.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("shard %s: %w", h.name, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return nil, fmt.Errorf("%w: shard %s: status %d: %s", ErrUnavailable, h.name, resp.StatusCode, bytes.TrimSpace(msg))
	}
	cs, err := storage.ReadClustersExact(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("shard %s: %w", h.name, err)
	}
	return cs, nil
}

// Ready implements Backend by probing the shard server's /readyz.
func (h *HTTP) Ready(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, h.base+"/readyz", nil)
	if err != nil {
		return err
	}
	resp, err := h.client.Do(req)
	if err != nil {
		return fmt.Errorf("shard %s: %w", h.name, err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%w: shard %s: readyz status %d", ErrUnavailable, h.name, resp.StatusCode)
	}
	return nil
}

// NewHandler returns the server half of the wire protocol: an http.Handler
// answering QueryPath POSTs from b. Mount it behind the serve path's
// readiness and shedding gates.
func NewHandler(b Backend) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var wr wireRequest
		if err := json.NewDecoder(io.LimitReader(r.Body, maxWireRequest)).Decode(&wr); err != nil {
			http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
			return
		}
		tr := cps.TimeRange{From: cps.Window(wr.From), To: cps.Window(wr.To)}
		regions := make([]geo.RegionID, len(wr.Regions))
		for i, id := range wr.Regions {
			regions[i] = geo.RegionID(id)
		}
		cs, err := b.Candidates(r.Context(), tr, regions)
		if err != nil {
			http.Error(w, fmt.Sprintf("shard query: %v", err), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		if _, err := storage.WriteClustersExact(w, cs); err != nil {
			// Headers are gone; the truncated body fails the client's CRC.
			return
		}
	})
}
