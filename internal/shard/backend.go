package shard

import (
	"context"
	"fmt"
	"sync"

	"github.com/cpskit/atypical/internal/cluster"
	"github.com/cpskit/atypical/internal/cps"
	"github.com/cpskit/atypical/internal/forest"
	"github.com/cpskit/atypical/internal/geo"
	"github.com/cpskit/atypical/internal/query"
	"github.com/cpskit/atypical/internal/traffic"
)

// Backend answers the shard half of a scattered query: the candidate
// micro-clusters this shard owns that lie in the time range and touch the
// region set, in the shard's local day-ascending, ID-ascending order.
// Implementations must be safe for concurrent use.
type Backend interface {
	// Name identifies the shard in metrics, spans, EXPLAIN, and partial-
	// result reports. Stable across runs.
	Name() string
	// Candidates runs the candidates filter over the shard's slice.
	Candidates(ctx context.Context, tr cps.TimeRange, regions []geo.RegionID) ([]*cluster.Cluster, error)
	// Ready reports whether the shard can answer queries (nil = ready).
	Ready(ctx context.Context) error
}

// Local serves one shard from an in-process forest: either a dedicated
// per-shard forest (Set) holding exactly this shard's micro-clusters, or a
// home-filtered view over a full forest (NewLocalView) — the shape an HTTP
// shard server uses, since it ingests the whole deterministic stream and
// owns its slice by predicate rather than by physical partition.
type Local struct {
	name string
	net  *traffic.Network
	// fst resolves the forest per call, so views follow facade-level forest
	// swaps (LoadForest) without rewiring.
	fst  func() *forest.Forest
	keep func(*cluster.Cluster) bool // nil keeps everything
}

// NewLocal returns a backend over a dedicated per-shard forest.
func NewLocal(name string, net *traffic.Network, fst func() *forest.Forest) *Local {
	return &Local{name: name, net: net, fst: fst}
}

// NewLocalView returns a backend serving shard s of m as a home-filtered
// view over a full forest.
func NewLocalView(name string, net *traffic.Network, fst func() *forest.Forest, m *Map, s int) *Local {
	return &Local{
		name: name,
		net:  net,
		fst:  fst,
		keep: func(c *cluster.Cluster) bool { return m.HomeShard(net, c) == s },
	}
}

// Name implements Backend.
func (l *Local) Name() string { return l.name }

// Candidates implements Backend: the shard-side candidates stage —
// micro-clusters in range, owned by this shard, touching the region set —
// in stored (canonical) order.
func (l *Local) Candidates(ctx context.Context, tr cps.TimeRange, regions []geo.RegionID) ([]*cluster.Cluster, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	inRegion := make(map[geo.RegionID]bool, len(regions))
	for _, r := range regions {
		inRegion[r] = true
	}
	var out []*cluster.Cluster
	for _, c := range l.fst().MicrosInRange(tr) {
		if l.keep != nil && !l.keep(c) {
			continue
		}
		if query.Touches(l.net, c, inRegion) {
			out = append(out, c)
		}
	}
	return out, ctx.Err()
}

// Ready implements Backend: an in-process forest is always ready.
func (l *Local) Ready(ctx context.Context) error { return ctx.Err() }

// Set is the in-process sharded forest: one dedicated forest per shard, fed
// during ingest by routing each day's extracted micro-clusters to their home
// shard. Routing preserves extraction order, so each shard's forest stores
// its slice in the same relative order the global forest does — the
// invariant the coordinator's (day, ID) merge relies on. The per-shard
// forests share the stored *cluster.Cluster values with the global forest
// (clusters are immutable once built), so the split costs slice headers, not
// copies.
type Set struct {
	m            *Map
	net          *traffic.Network
	spec         cps.WindowSpec
	gen          *cluster.IDGen
	opts         cluster.IntegrateOptions
	daysPerMonth int

	mu      sync.RWMutex // guards the forests slice (Reset swaps it mid-flight)
	forests []*forest.Forest
}

// NewSet builds an empty sharded forest over m.
func NewSet(m *Map, net *traffic.Network, spec cps.WindowSpec, gen *cluster.IDGen, opts cluster.IntegrateOptions, daysPerMonth int) *Set {
	s := &Set{m: m, net: net, spec: spec, gen: gen, opts: opts, daysPerMonth: daysPerMonth}
	s.forests = s.freshForests()
	return s
}

func (s *Set) freshForests() []*forest.Forest {
	fs := make([]*forest.Forest, s.m.NumShards())
	for i := range fs {
		fs[i] = forest.New(s.spec, s.gen, s.opts, s.daysPerMonth)
	}
	return fs
}

// Map returns the set's shard map.
func (s *Set) Map() *Map { return s.m }

// AppendDay routes one day's micro-clusters (in canonical extraction order)
// to their home shards, preserving relative order within each shard.
func (s *Set) AppendDay(day int, micros []*cluster.Cluster) {
	perShard := make([][]*cluster.Cluster, s.m.NumShards())
	for _, c := range micros {
		h := s.m.HomeShard(s.net, c)
		perShard[h] = append(perShard[h], c)
	}
	for i, cs := range perShard {
		if len(cs) > 0 {
			s.Forest(i).AppendDay(day, cs)
		}
	}
}

// Reset discards every shard's contents (after a facade-level forest swap;
// the caller re-feeds via AppendDay).
func (s *Set) Reset() {
	fresh := s.freshForests()
	s.mu.Lock()
	s.forests = fresh
	s.mu.Unlock()
}

// Forest returns shard i's current forest (the forests themselves are safe
// for concurrent use; the indirection survives Reset).
func (s *Set) Forest(i int) *forest.Forest {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.forests[i]
}

// Backends returns one Local backend per shard, named shard0..shardN-1.
func (s *Set) Backends() []Backend {
	n := s.m.NumShards()
	out := make([]Backend, n)
	for i := 0; i < n; i++ {
		i := i
		out[i] = NewLocal(fmt.Sprintf("shard%d", i), s.net, func() *forest.Forest { return s.Forest(i) })
	}
	return out
}
