// Package detect turns raw sensor readings into atypical records.
//
// The paper assumes "the atypical criteria is given and clean and trustworthy
// atypical records can be retrieved by CPS" (Section II-A), citing prior
// work for the selection step. This package supplies that step for the
// synthetic traffic deployment so the pre-processing scan (the PR curve of
// Fig. 15) has a real code path: a reading is atypical when the measured
// speed falls below a threshold, and the severity — atypical duration within
// the window — is derived from how far below it falls.
package detect

import (
	"github.com/cpskit/atypical/internal/cps"
)

// Speed-model constants shared with the workload generator. The generator
// encodes an intended severity m (minutes of the 5-minute window spent
// congested) as speed = ThresholdMPH - SevSlopeMPH·m, so detection recovers
// the injected severity exactly.
const (
	// FreeflowMPH is the uncongested cruising speed.
	FreeflowMPH = 65.0
	// ThresholdMPH is the atypical criterion: readings below it are
	// congested.
	ThresholdMPH = 55.0
	// SevSlopeMPH converts severity minutes to a speed drop.
	SevSlopeMPH = 10.0
	// MaxSeverityMinutes caps the per-window severity at the window width.
	MaxSeverityMinutes = 5.0
)

// SeverityFromSpeed maps a speed reading to an atypical severity in minutes.
// Readings at or above the threshold yield zero.
func SeverityFromSpeed(mph float64) cps.Severity {
	if mph >= ThresholdMPH {
		return 0
	}
	sev := (ThresholdMPH - mph) / SevSlopeMPH
	if sev > MaxSeverityMinutes {
		sev = MaxSeverityMinutes
	}
	return cps.Severity(sev)
}

// SpeedFromSeverity is the generator-side inverse of SeverityFromSpeed.
func SpeedFromSeverity(sev cps.Severity) float64 {
	if sev <= 0 {
		return FreeflowMPH
	}
	if sev > MaxSeverityMinutes {
		sev = MaxSeverityMinutes
	}
	return ThresholdMPH - SevSlopeMPH*float64(sev)
}

// Detector selects atypical records from a reading stream.
type Detector struct {
	// Threshold overrides ThresholdMPH when non-zero.
	Threshold float64

	records []cps.Record
	// scanned counts every reading seen, atypical or not; this is the I/O
	// the PR curve in Fig. 15 measures.
	scanned int64
}

// Observe consumes one reading, retaining it if atypical.
func (d *Detector) Observe(r cps.Reading) {
	d.scanned++
	th := d.Threshold
	if th == 0 {
		th = ThresholdMPH
	}
	if r.Value >= th {
		return
	}
	sev := (th - r.Value) / SevSlopeMPH
	if sev > MaxSeverityMinutes {
		sev = MaxSeverityMinutes
	}
	d.records = append(d.records, cps.Record{Sensor: r.Sensor, Window: r.Window, Severity: cps.Severity(sev)})
}

// Scanned returns the number of readings observed so far.
func (d *Detector) Scanned() int64 { return d.scanned }

// Result returns the atypical records collected so far as a canonical set
// and resets the detector for reuse.
func (d *Detector) Result() *cps.RecordSet {
	rs := cps.NewRecordSet(d.records)
	d.records = nil
	d.scanned = 0
	return rs
}

// Scan runs the detector over a full reading stream and returns the atypical
// record set plus the number of readings scanned.
func Scan(stream func(fn func(cps.Reading))) (*cps.RecordSet, int64) {
	var d Detector
	stream(d.Observe)
	n := d.scanned
	return d.Result(), n
}
