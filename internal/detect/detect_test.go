package detect

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/cpskit/atypical/internal/cps"
)

func TestSeveritySpeedRoundTrip(t *testing.T) {
	for _, sev := range []cps.Severity{0.5, 1, 2.5, 4, 5} {
		got := SeverityFromSpeed(SpeedFromSeverity(sev))
		if math.Abs(float64(got-sev)) > 1e-9 {
			t.Errorf("round trip %v -> %v", sev, got)
		}
	}
}

func TestSeverityFromSpeedBounds(t *testing.T) {
	if SeverityFromSpeed(ThresholdMPH) != 0 {
		t.Error("threshold speed should not be atypical")
	}
	if SeverityFromSpeed(FreeflowMPH) != 0 {
		t.Error("freeflow should not be atypical")
	}
	if got := SeverityFromSpeed(-10); got != MaxSeverityMinutes {
		t.Errorf("deep congestion severity = %v, want cap %v", got, MaxSeverityMinutes)
	}
	if got := SpeedFromSeverity(0); got != FreeflowMPH {
		t.Errorf("zero severity speed = %v", got)
	}
	if got := SpeedFromSeverity(99); got != ThresholdMPH-SevSlopeMPH*MaxSeverityMinutes {
		t.Errorf("over-cap severity speed = %v", got)
	}
}

func TestSeverityMonotoneProperty(t *testing.T) {
	f := func(a, b uint8) bool {
		va := float64(a) / 4 // speeds 0..64
		vb := float64(b) / 4
		if va > vb {
			va, vb = vb, va
		}
		return SeverityFromSpeed(va) >= SeverityFromSpeed(vb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDetectorObserve(t *testing.T) {
	var d Detector
	d.Observe(cps.Reading{Sensor: 1, Window: 10, Value: 65}) // normal
	d.Observe(cps.Reading{Sensor: 2, Window: 10, Value: 45}) // atypical, sev 1
	d.Observe(cps.Reading{Sensor: 3, Window: 11, Value: 5})  // atypical, sev 5
	if d.Scanned() != 3 {
		t.Errorf("Scanned = %d", d.Scanned())
	}
	rs := d.Result()
	if rs.Len() != 2 {
		t.Fatalf("records = %d, want 2", rs.Len())
	}
	recs := rs.Records()
	if recs[0].Severity != 1 || recs[1].Severity != 5 {
		t.Errorf("severities = %v, %v", recs[0].Severity, recs[1].Severity)
	}
	// Result resets the detector.
	if d.Scanned() != 0 || d.Result().Len() != 0 {
		t.Error("Result should reset the detector")
	}
}

func TestDetectorCustomThreshold(t *testing.T) {
	d := Detector{Threshold: 30}
	d.Observe(cps.Reading{Sensor: 1, Window: 0, Value: 45}) // normal under custom threshold
	d.Observe(cps.Reading{Sensor: 2, Window: 0, Value: 20}) // sev 1 under custom threshold
	rs := d.Result()
	if rs.Len() != 1 {
		t.Fatalf("records = %d, want 1", rs.Len())
	}
	if got := rs.Records()[0].Severity; got != 1 {
		t.Errorf("severity = %v, want 1", got)
	}
}

func TestScan(t *testing.T) {
	stream := func(fn func(cps.Reading)) {
		for w := cps.Window(0); w < 4; w++ {
			fn(cps.Reading{Sensor: 0, Window: w, Value: 65})
			fn(cps.Reading{Sensor: 1, Window: w, Value: 25})
		}
	}
	rs, n := Scan(stream)
	if n != 8 {
		t.Errorf("scanned = %d", n)
	}
	if rs.Len() != 4 {
		t.Errorf("atypical = %d", rs.Len())
	}
	if rs.TotalSeverity() != 12 { // 4 windows x sev 3
		t.Errorf("total severity = %v", rs.TotalSeverity())
	}
}
