// Package stream maintains atypical events incrementally over an ordered
// record stream — the online counterpart of Algorithm 1 for deployments
// where micro-clusters must be available as events close, rather than after
// a batch scan ("to facilitate scalable, flexible and online analysis",
// Section I).
//
// The Processor consumes records in canonical (window, sensor) order. Each
// record either joins an open event (it is direct atypical related to one of
// the event's recent records), bridges several open events into one, or
// opens a new event. An event closes — and its micro-cluster is emitted —
// once no record can relate to it anymore (the stream has advanced more than
// δt past its last record). For any finite canonical stream, the emitted
// micro-clusters partition the records exactly as the batch extraction does;
// see the equivalence property test.
package stream

import (
	"context"
	"fmt"
	"sync/atomic"

	"github.com/cpskit/atypical/internal/cluster"
	"github.com/cpskit/atypical/internal/cps"
	"github.com/cpskit/atypical/internal/obs"
)

// event is one open atypical event under construction.
type event struct {
	// forward points to the event this one was merged into; nil while the
	// event is live. Chains are collapsed on lookup (union-find style).
	forward *event
	records []cps.Record
	// last is the most recent window of any record in the event.
	last cps.Window
}

// find resolves merge forwarding with path compression.
func (e *event) find() *event {
	root := e
	for root.forward != nil {
		root = root.forward
	}
	for e.forward != nil {
		next := e.forward
		e.forward = root
		e = next
	}
	return root
}

// Config parameterizes the processor.
type Config struct {
	// Neighbors lists, per sensor, the sensors strictly within δd (from
	// index.NewNeighborIndex(...).NeighborLists()).
	Neighbors [][]cps.SensorID
	// MaxGap is the largest window gap that still links two records
	// (cluster.MaxWindowGap(δt, width)).
	MaxGap int
	// Emit receives each closed event's micro-cluster. Must be non-nil.
	Emit func(*cluster.Cluster)
}

// Processor ingests a canonical record stream and emits micro-clusters as
// events close. The ingest side (Observe/ObserveAll/Flush) is single-writer:
// only one goroutine may feed the stream. The progress counters (Observed,
// Emitted) are atomic and may be read concurrently from other goroutines —
// e.g. a monitoring loop watching an ObserveAll in flight.
//
// Memory invariant for long-lived streams: every internal structure is
// bounded by the records of the last MaxGap+1 windows. In particular the
// recent map holds no sensor whose latest record is more than MaxGap windows
// behind the stream clock — stale refs can never satisfy join and are pruned
// as the clock advances, so a perpetual stream over many sensors does not
// accumulate dead entries between Flushes.
type Processor struct {
	cfg Config
	gen *cluster.IDGen

	// recent maps each sensor to the event and window of its latest record.
	recent map[cps.SensorID]sensorRef
	// expiry buckets the sensors of recent by the window of their latest
	// record, so advance prunes stale refs in time amortized by the records
	// that created them instead of scanning the whole map. A sensor appears
	// in the bucket of every window it reported in; only the bucket matching
	// its current ref deletes it.
	expiry map[cps.Window][]cps.SensorID
	// open lists live events (some entries may be forwarded; compacted on
	// advance).
	open []*event

	window   cps.Window // current stream window
	started  bool
	observed atomic.Int64
	emitted  atomic.Int64

	// obsm holds the metric handles; nil (the default) disables them. Stored
	// atomically so SetObserver may arm a processor another goroutine reads.
	obsm atomic.Pointer[streamObs]
}

// streamObs bundles the processor's pre-resolved metric handles.
type streamObs struct {
	records *obs.Counter
	emitted *obs.Counter
	open    *obs.Gauge
}

// SetObserver registers the stream metric families on r and arms the
// processor; a nil registry disarms it. Safe to call concurrently with reads
// of the progress counters, but like the ingest methods it must not race
// with Observe/Flush.
func (p *Processor) SetObserver(r *obs.Registry) {
	if r == nil {
		p.obsm.Store(nil)
		return
	}
	p.obsm.Store(&streamObs{
		records: r.Counter("atyp_stream_records_total",
			"records consumed from the canonical stream"),
		emitted: r.Counter("atyp_stream_clusters_emitted_total",
			"micro-clusters emitted as events closed"),
		open: r.Gauge("atyp_stream_open_events",
			"events currently under construction"),
	})
}

type sensorRef struct {
	ev     *event
	window cps.Window
}

// New returns a processor; gen supplies the emitted clusters' IDs.
func New(cfg Config, gen *cluster.IDGen) (*Processor, error) {
	if cfg.Emit == nil {
		return nil, fmt.Errorf("stream: Config.Emit is required")
	}
	if cfg.MaxGap < 0 {
		return nil, fmt.Errorf("stream: MaxGap must be non-negative, got %d", cfg.MaxGap)
	}
	return &Processor{
		cfg:    cfg,
		gen:    gen,
		recent: make(map[cps.SensorID]sensorRef),
		expiry: make(map[cps.Window][]cps.SensorID),
	}, nil
}

// Observed returns the number of records consumed. Safe to call while
// another goroutine feeds the stream.
func (p *Processor) Observed() int64 { return p.observed.Load() }

// Emitted returns the number of micro-clusters emitted. Safe to call while
// another goroutine feeds the stream.
func (p *Processor) Emitted() int64 { return p.emitted.Load() }

// OpenEvents returns the number of events still under construction.
func (p *Processor) OpenEvents() int {
	n := 0
	for _, e := range p.open {
		if e.forward == nil {
			n++
		}
	}
	return n
}

// Observe consumes one record. Records must arrive in canonical (window,
// sensor) order; out-of-order records are rejected.
func (p *Processor) Observe(r cps.Record) error {
	if p.started && r.Window < p.window {
		return fmt.Errorf("stream: record window %d before current window %d", r.Window, p.window)
	}
	if !p.started || r.Window > p.window {
		p.advance(r.Window)
	}
	p.observed.Add(1)
	if m := p.obsm.Load(); m != nil {
		m.records.Inc()
	}

	// Gather the open events this record is direct atypical related to:
	// same sensor, or a δd-neighbor, with a record within MaxGap windows.
	var home *event
	join := func(s cps.SensorID) {
		ref, ok := p.recent[s]
		if !ok || r.Window-ref.window > cps.Window(p.cfg.MaxGap) {
			return
		}
		ev := ref.ev.find()
		switch {
		case home == nil:
			home = ev
		case home != ev:
			// The record bridges two open events: merge the smaller into
			// the larger.
			if len(ev.records) > len(home.records) {
				home, ev = ev, home
			}
			home.records = append(home.records, ev.records...)
			if ev.last > home.last {
				home.last = ev.last
			}
			ev.forward = home
			ev.records = nil
		}
	}
	join(r.Sensor)
	if int(r.Sensor) < len(p.cfg.Neighbors) {
		for _, nb := range p.cfg.Neighbors[r.Sensor] {
			join(nb)
		}
	}
	if home == nil {
		home = &event{}
		p.open = append(p.open, home)
	}
	home.records = append(home.records, r)
	if r.Window > home.last {
		home.last = r.Window
	}
	prev, had := p.recent[r.Sensor]
	p.recent[r.Sensor] = sensorRef{ev: home, window: r.Window}
	if !had || prev.window != r.Window {
		p.expiry[r.Window] = append(p.expiry[r.Window], r.Sensor)
	}
	return nil
}

// ObserveAll consumes a batch of canonical records, polling ctx between
// window boundaries: cancellation stops mid-batch with the context error,
// leaving already-consumed records' events open (Flush still closes them).
func (p *Processor) ObserveAll(ctx context.Context, recs []cps.Record) error {
	for i, r := range recs {
		if i == 0 || r.Window != recs[i-1].Window {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if err := p.Observe(r); err != nil {
			return err
		}
	}
	return nil
}

// advance moves the stream clock to w, closing events that can no longer
// gain records (last record more than MaxGap windows in the past) and
// pruning recent-map refs that can no longer satisfy join.
func (p *Processor) advance(w cps.Window) {
	p.window = w
	p.started = true
	live := p.open[:0]
	for _, e := range p.open {
		if e.forward != nil {
			continue // merged away
		}
		if w-e.last > cps.Window(p.cfg.MaxGap) {
			p.emit(e)
			continue
		}
		live = append(live, e)
	}
	// Nil the compacted tail: the backing array otherwise pins the
	// emitted/merged events — records slices included — until the slice
	// grows back over the slots.
	clear(p.open[len(live):])
	p.open = live

	// Expire the recent buckets of every window now more than MaxGap behind
	// the clock. At most MaxGap+1 buckets are live after a prune, so the key
	// scan is O(MaxGap) plus the refs actually deleted — amortized by the
	// records that created them, never a full-map sweep.
	for bw, sensors := range p.expiry {
		if w-bw <= cps.Window(p.cfg.MaxGap) {
			continue
		}
		for _, s := range sensors {
			if ref, ok := p.recent[s]; ok && ref.window == bw {
				delete(p.recent, s)
			}
		}
		delete(p.expiry, bw)
	}

	if m := p.obsm.Load(); m != nil {
		// Compaction dropped every forwarded entry, so len(live) is already
		// the exact open-event count; OpenEvents() stays for external
		// callers, where open may hold forwarded entries between advances.
		m.open.Set(float64(len(live)))
	}
}

// Flush closes every open event; call at end of stream.
func (p *Processor) Flush() {
	for _, e := range p.open {
		if e.forward == nil {
			p.emit(e)
		}
	}
	clear(p.open) // drop the event refs the backing array would pin
	p.open = p.open[:0]
	p.recent = make(map[cps.SensorID]sensorRef)
	clear(p.expiry)
	p.started = false
	if m := p.obsm.Load(); m != nil {
		m.open.Set(0)
	}
}

func (p *Processor) emit(e *event) {
	// Records joined out of canonical order during merges; FromRecords
	// canonicalizes features regardless, so no sort is needed here.
	p.emitted.Add(1)
	if m := p.obsm.Load(); m != nil {
		m.emitted.Inc()
	}
	p.cfg.Emit(cluster.FromRecords(p.gen.Next(), e.records))
}
