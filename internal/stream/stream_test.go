package stream

import (
	"context"
	"errors"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"github.com/cpskit/atypical/internal/cluster"
	"github.com/cpskit/atypical/internal/cps"
	"github.com/cpskit/atypical/internal/gen"
	"github.com/cpskit/atypical/internal/geo"
	"github.com/cpskit/atypical/internal/index"
	"github.com/cpskit/atypical/internal/traffic"
)

func lineLocs(n int, spacingMiles float64) []geo.Point {
	locs := make([]geo.Point, n)
	for i := range locs {
		locs[i] = geo.Point{Lat: 34, Lon: -118 + float64(i)*spacingMiles/geo.MilesPerDegreeLon(34)}
	}
	return locs
}

func newProc(t testing.TB, locs []geo.Point, deltaD float64, maxGap int) (*Processor, *[]*cluster.Cluster) {
	t.Helper()
	var out []*cluster.Cluster
	var g cluster.IDGen
	p, err := New(Config{
		Neighbors: index.NewNeighborIndex(locs, deltaD).NeighborLists(),
		MaxGap:    maxGap,
		Emit:      func(c *cluster.Cluster) { out = append(out, c) },
	}, &g)
	if err != nil {
		t.Fatal(err)
	}
	return p, &out
}

func feed(t testing.TB, p *Processor, recs []cps.Record) {
	t.Helper()
	for _, r := range recs {
		if err := p.Observe(r); err != nil {
			t.Fatalf("Observe(%v): %v", r, err)
		}
	}
	p.Flush()
}

func TestNewValidation(t *testing.T) {
	var g cluster.IDGen
	if _, err := New(Config{MaxGap: 1}, &g); err == nil {
		t.Error("nil Emit accepted")
	}
	if _, err := New(Config{MaxGap: -1, Emit: func(*cluster.Cluster) {}}, &g); err == nil {
		t.Error("negative MaxGap accepted")
	}
}

func TestRejectsOutOfOrder(t *testing.T) {
	p, _ := newProc(t, lineLocs(3, 1), 1.5, 2)
	if err := p.Observe(cps.Record{Sensor: 0, Window: 5, Severity: 1}); err != nil {
		t.Fatal(err)
	}
	if err := p.Observe(cps.Record{Sensor: 0, Window: 4, Severity: 1}); err == nil {
		t.Error("out-of-order record accepted")
	}
}

func TestSingleEvent(t *testing.T) {
	p, out := newProc(t, lineLocs(4, 1), 1.5, 2)
	feed(t, p, []cps.Record{
		{Sensor: 0, Window: 0, Severity: 2},
		{Sensor: 1, Window: 0, Severity: 3},
		{Sensor: 1, Window: 1, Severity: 4},
	})
	if len(*out) != 1 {
		t.Fatalf("clusters = %d, want 1", len(*out))
	}
	c := (*out)[0]
	if c.Severity() != 9 {
		t.Errorf("severity = %v", c.Severity())
	}
	if p.Observed() != 3 || p.Emitted() != 1 {
		t.Errorf("counters = %d, %d", p.Observed(), p.Emitted())
	}
}

func TestEventClosesAfterGap(t *testing.T) {
	p, out := newProc(t, lineLocs(2, 1), 1.5, 2)
	if err := p.Observe(cps.Record{Sensor: 0, Window: 0, Severity: 1}); err != nil {
		t.Fatal(err)
	}
	// Advancing the stream by more than MaxGap closes the first event
	// before Flush.
	if err := p.Observe(cps.Record{Sensor: 0, Window: 10, Severity: 1}); err != nil {
		t.Fatal(err)
	}
	if len(*out) != 1 {
		t.Fatalf("event should have closed on advance, emitted %d", len(*out))
	}
	if p.OpenEvents() != 1 {
		t.Errorf("open events = %d, want 1", p.OpenEvents())
	}
	p.Flush()
	if len(*out) != 2 {
		t.Errorf("after flush emitted = %d", len(*out))
	}
}

func TestBridgeMergesEvents(t *testing.T) {
	// Sensors 0 and 2 are 2 miles apart (unrelated at δd=1.5); sensor 1
	// sits between them and bridges.
	p, out := newProc(t, lineLocs(3, 1), 1.5, 2)
	feed(t, p, []cps.Record{
		{Sensor: 0, Window: 0, Severity: 1},
		{Sensor: 2, Window: 0, Severity: 1},
		{Sensor: 1, Window: 1, Severity: 1}, // bridges both open events
	})
	if len(*out) != 1 {
		t.Fatalf("clusters = %d, want 1 (bridged)", len(*out))
	}
	if (*out)[0].Severity() != 3 {
		t.Errorf("severity = %v", (*out)[0].Severity())
	}
}

// The central property: streaming emission partitions records exactly like
// batch extraction (Algorithm 1).
func TestMatchesBatchExtraction(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	locs := lineLocs(25, 0.8)
	neighbors := index.NewNeighborIndex(locs, 1.5).NeighborLists()
	for trial := 0; trial < 15; trial++ {
		maxGap := trial % 4
		var recs []cps.Record
		n := 100 + rng.Intn(300)
		for i := 0; i < n; i++ {
			recs = append(recs, cps.Record{
				Sensor:   cps.SensorID(rng.Intn(25)),
				Window:   cps.Window(rng.Intn(80)),
				Severity: cps.Severity(rng.Intn(5)) + 1,
			})
		}
		canonical := cps.NewRecordSet(recs).Records()

		var got []*cluster.Cluster
		var g cluster.IDGen
		p, err := New(Config{
			Neighbors: neighbors,
			MaxGap:    maxGap,
			Emit:      func(c *cluster.Cluster) { got = append(got, c) },
		}, &g)
		if err != nil {
			t.Fatal(err)
		}
		feed(t, p, canonical)

		var g2 cluster.IDGen
		want := cluster.ExtractMicroClusters(&g2, canonical, neighbors, maxGap)
		if !sameClusterSet(got, want) {
			t.Fatalf("trial %d (maxGap %d): stream %d clusters != batch %d clusters",
				trial, maxGap, len(got), len(want))
		}
	}
}

// sameClusterSet compares cluster sets by canonical feature fingerprints.
func sameClusterSet(a, b []*cluster.Cluster) bool {
	if len(a) != len(b) {
		return false
	}
	fa, fb := fingerprints(a), fingerprints(b)
	for i := range fa {
		if fa[i] != fb[i] {
			return false
		}
	}
	return true
}

func fingerprints(cs []*cluster.Cluster) []string {
	out := make([]string, len(cs))
	for i, c := range cs {
		s := ""
		for _, e := range c.SF {
			s += string(rune(e.Key)) + ":" + string(rune(int(e.Sev*8))) + ";"
		}
		s += "|"
		for _, e := range c.TF {
			s += string(rune(e.Key)) + ":" + string(rune(int(e.Sev*8))) + ";"
		}
		out[i] = s
	}
	sort.Strings(out)
	return out
}

// Property: total severity and record counts are conserved through the
// processor regardless of input shape.
func TestConservationProperty(t *testing.T) {
	locs := lineLocs(10, 1)
	neighbors := index.NewNeighborIndex(locs, 1.5).NeighborLists()
	f := func(seeds []uint16, gapRaw uint8) bool {
		recs := make([]cps.Record, 0, len(seeds))
		for _, x := range seeds {
			recs = append(recs, cps.Record{
				Sensor:   cps.SensorID(x % 10),
				Window:   cps.Window(x / 10 % 50),
				Severity: cps.Severity(x%4) + 1,
			})
		}
		canonical := cps.NewRecordSet(recs).Records()
		var total cps.Severity
		for _, r := range canonical {
			total += r.Severity
		}
		var got cps.Severity
		var g cluster.IDGen
		p, err := New(Config{
			Neighbors: neighbors,
			MaxGap:    int(gapRaw % 4),
			Emit:      func(c *cluster.Cluster) { got += c.Severity() },
		}, &g)
		if err != nil {
			return false
		}
		for _, r := range canonical {
			if p.Observe(r) != nil {
				return false
			}
		}
		p.Flush()
		d := float64(total - got)
		return d < 1e-6 && d > -1e-6 && p.Observed() == int64(len(canonical))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// End to end on the synthetic workload: streaming a full day of traffic
// produces the batch micro-clusters.
func TestStreamsSyntheticDay(t *testing.T) {
	net := traffic.GenerateNetwork(traffic.ScaledConfig(200))
	cfg := gen.DefaultConfig(net)
	cfg.DaysPerMonth = 1
	g, err := gen.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ds := g.Month(0)
	locs := make([]geo.Point, net.NumSensors())
	for i, s := range net.Sensors {
		locs[i] = s.Loc
	}
	neighbors := index.NewNeighborIndex(locs, 1.5).NeighborLists()
	maxGap := cluster.MaxWindowGap(15*time.Minute, cps.DefaultSpec().Width)

	var got []*cluster.Cluster
	var idgen cluster.IDGen
	p, err := New(Config{
		Neighbors: neighbors,
		MaxGap:    maxGap,
		Emit:      func(c *cluster.Cluster) { got = append(got, c) },
	}, &idgen)
	if err != nil {
		t.Fatal(err)
	}
	feed(t, p, ds.Atypical.Records())

	var idgen2 cluster.IDGen
	want := cluster.ExtractMicroClusters(&idgen2, ds.Atypical.Records(), neighbors, maxGap)
	if len(got) != len(want) {
		t.Fatalf("stream %d clusters, batch %d", len(got), len(want))
	}
	var gotSev, wantSev cps.Severity
	for i := range got {
		gotSev += got[i].Severity()
		wantSev += want[i].Severity()
	}
	if d := float64(gotSev - wantSev); d > 1e-6 || d < -1e-6 {
		t.Errorf("severity: stream %v, batch %v", gotSev, wantSev)
	}
}

// ObserveAll matches a manual Observe loop, and its counters may be read
// concurrently while the batch drains (the race detector is the oracle).
func TestObserveAllMatchesObserveLoop(t *testing.T) {
	recs := []cps.Record{
		{Sensor: 0, Window: 0, Severity: 2},
		{Sensor: 1, Window: 0, Severity: 3},
		{Sensor: 1, Window: 1, Severity: 4},
		{Sensor: 3, Window: 9, Severity: 1},
	}
	loop, loopOut := newProc(t, lineLocs(4, 1), 1.5, 2)
	feed(t, loop, recs)

	batch, batchOut := newProc(t, lineLocs(4, 1), 1.5, 2)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for batch.Observed() < int64(len(recs)) {
			_ = batch.Emitted()
		}
	}()
	if err := batch.ObserveAll(context.Background(), recs); err != nil {
		t.Fatal(err)
	}
	<-done
	batch.Flush()

	if len(*batchOut) != len(*loopOut) {
		t.Fatalf("ObserveAll emitted %d clusters, loop %d", len(*batchOut), len(*loopOut))
	}
	for i := range *batchOut {
		if (*batchOut)[i].Severity() != (*loopOut)[i].Severity() {
			t.Errorf("cluster %d severity %v, loop %v", i, (*batchOut)[i].Severity(), (*loopOut)[i].Severity())
		}
	}
	if batch.Observed() != loop.Observed() || batch.Emitted() != loop.Emitted() {
		t.Errorf("counters = %d/%d, loop %d/%d",
			batch.Observed(), batch.Emitted(), loop.Observed(), loop.Emitted())
	}
}

// The recent map must not leak: once a sensor's latest record is more than
// MaxGap windows behind the stream clock it can never satisfy join, so
// advance prunes it without waiting for Flush.
func TestRecentMapPrunedAfterGap(t *testing.T) {
	const n = 40
	p, _ := newProc(t, lineLocs(n, 10), 1.5, 2)
	for i := 0; i < n; i++ {
		if err := p.Observe(cps.Record{Sensor: cps.SensorID(i), Window: 0, Severity: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if len(p.recent) != n {
		t.Fatalf("recent = %d sensors, want %d", len(p.recent), n)
	}
	// Advance past the gap: every window-0 ref is stale now.
	if err := p.Observe(cps.Record{Sensor: 0, Window: 10, Severity: 1}); err != nil {
		t.Fatal(err)
	}
	if len(p.recent) != 1 {
		t.Errorf("recent = %d sensors after gap, want 1 (the live one)", len(p.recent))
	}
	if len(p.expiry) != 1 {
		t.Errorf("expiry = %d buckets after gap, want 1", len(p.expiry))
	}
}

// A re-reporting sensor must survive the prune of its older bucket: only the
// bucket matching the sensor's current ref may delete it.
func TestRecentPruneKeepsRefreshedSensor(t *testing.T) {
	p, _ := newProc(t, lineLocs(4, 10), 1.5, 2)
	feedNoFlush := []cps.Record{
		{Sensor: 0, Window: 0, Severity: 1},
		{Sensor: 1, Window: 0, Severity: 1},
		{Sensor: 0, Window: 2, Severity: 1}, // sensor 0 refreshes
		{Sensor: 2, Window: 4, Severity: 1}, // window 0 expires, window 2 lives
	}
	for _, r := range feedNoFlush {
		if err := p.Observe(r); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := p.recent[0]; !ok {
		t.Error("refreshed sensor 0 pruned by its stale bucket")
	}
	if _, ok := p.recent[1]; ok {
		t.Error("stale sensor 1 survived the prune")
	}
	if _, ok := p.recent[2]; !ok {
		t.Error("live sensor 2 missing from recent")
	}
}

// Compaction must nil the tail slots it vacates: the backing array otherwise
// pins emitted events and their records until the slice grows back.
func TestCompactionClearsTailSlots(t *testing.T) {
	p, _ := newProc(t, lineLocs(8, 10), 1.5, 1)
	for i := 0; i < 8; i++ {
		if err := p.Observe(cps.Record{Sensor: cps.SensorID(i), Window: 0, Severity: 1}); err != nil {
			t.Fatal(err)
		}
	}
	// Close all 8 far-apart events, then open one new event: the compacted
	// tail of the shared backing array must hold no stale *event refs.
	if err := p.Observe(cps.Record{Sensor: 0, Window: 5, Severity: 1}); err != nil {
		t.Fatal(err)
	}
	tail := p.open[len(p.open):cap(p.open)]
	for i, e := range tail {
		if e != nil {
			t.Fatalf("backing-array slot %d still pins an emitted event", i)
		}
	}
	p.Flush()
	tail = p.open[:cap(p.open)]
	for i, e := range tail {
		if e != nil {
			t.Fatalf("slot %d still pins an event after Flush", i)
		}
	}
	if len(p.expiry) != 0 {
		t.Errorf("expiry = %d buckets after Flush, want 0", len(p.expiry))
	}
}

func TestObserveAllCancelled(t *testing.T) {
	p, _ := newProc(t, lineLocs(3, 1), 1.5, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := p.ObserveAll(ctx, []cps.Record{{Sensor: 0, Window: 0, Severity: 1}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ObserveAll error = %v, want context.Canceled", err)
	}
	if p.Observed() != 0 {
		t.Fatalf("cancelled ObserveAll consumed %d records", p.Observed())
	}
}
