// Package report renders atypical clusters and query results for humans:
// the answers to the paper's Example 1 questions ("where do the congestions
// usually happen, when and how do they start, on which road segment or time
// period is the congestion most serious") as terminal-friendly text.
package report

import (
	"fmt"
	"sort"
	"strings"

	"github.com/cpskit/atypical/internal/cluster"
	"github.com/cpskit/atypical/internal/cps"
	"github.com/cpskit/atypical/internal/traffic"
)

// Describe renders one cluster as a single line answering Example 1: the
// event's extent and span, its most serious road segment, and its peak
// window.
func Describe(net *traffic.Network, spec cps.WindowSpec, c *cluster.Cluster) string {
	if len(c.SF) == 0 {
		return fmt.Sprintf("cluster %d: empty", c.ID)
	}
	span := c.WindowSpan()
	peakS, peakSev := c.PeakSensor()
	peakW, peakWSev := c.PeakWindow()
	sensor := net.Sensor(peakS)
	hw := net.Highways[sensor.Highway]
	return fmt.Sprintf(
		"cluster %d: %d sensors, %.0f severity-min over %s .. %s (from %d micro-events); most serious on %s mile %.1f (%.0f min atypical), peak window %s (%.0f min)",
		c.ID, len(c.SF), float64(c.Severity()),
		spec.Start(span.From).Format("2006-01-02 15:04"),
		spec.End(span.To-1).Format("2006-01-02 15:04"),
		c.Micros,
		hw.Name, sensor.MilePost, float64(peakSev),
		spec.Format(peakW), float64(peakWSev),
	)
}

// Ranking renders clusters as a ranked table, most severe first.
func Ranking(net *traffic.Network, spec cps.WindowSpec, clusters []*cluster.Cluster) string {
	sorted := make([]*cluster.Cluster, len(clusters))
	copy(sorted, clusters)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Severity() > sorted[j].Severity() })
	var b strings.Builder
	for i, c := range sorted {
		fmt.Fprintf(&b, "%2d. %s\n", i+1, Describe(net, spec, c))
	}
	return b.String()
}

// HourHistogram renders the cluster's severity by hour of day as a text
// histogram of the given width.
func HourHistogram(spec cps.WindowSpec, c *cluster.Cluster, width int) string {
	perHour := spec.PerDay() / 24
	var byHour [24]float64
	for _, e := range c.TF {
		hour := int(e.Key) / perHour % 24
		byHour[hour] += float64(e.Sev)
	}
	max := 0.0
	for _, v := range byHour {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for h, v := range byHour {
		bar := 0
		if max > 0 {
			bar = int(v / max * float64(width))
		}
		fmt.Fprintf(&b, "%02d:00 %8.0f %s\n", h, v, strings.Repeat("#", bar))
	}
	return b.String()
}

// HighwayBreakdown renders a cluster's severity share per highway,
// descending — the "where" answer at corridor granularity.
func HighwayBreakdown(net *traffic.Network, c *cluster.Cluster) string {
	mass := make(map[traffic.HighwayID]cps.Severity)
	for _, e := range c.SF {
		mass[net.Sensor(e.Key).Highway] += e.Sev
	}
	type kv struct {
		hw  traffic.HighwayID
		sev cps.Severity
	}
	rows := make([]kv, 0, len(mass))
	for hw, sev := range mass {
		rows = append(rows, kv{hw, sev})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].sev > rows[j].sev {
			return true
		}
		if rows[i].sev < rows[j].sev {
			return false
		}
		return rows[i].hw < rows[j].hw
	})
	total := c.Severity()
	var b strings.Builder
	for _, r := range rows {
		share := 0.0
		if total > 0 {
			share = 100 * float64(r.sev/total)
		}
		fmt.Fprintf(&b, "%-10s %8.0f min  %5.1f%%\n", net.Highways[r.hw].Name, float64(r.sev), share)
	}
	return b.String()
}
