package report

import (
	"strings"
	"testing"

	"github.com/cpskit/atypical/internal/cluster"
	"github.com/cpskit/atypical/internal/cps"
	"github.com/cpskit/atypical/internal/cube"
	"github.com/cpskit/atypical/internal/geo"
	"github.com/cpskit/atypical/internal/traffic"
)

func fixture(t *testing.T) (*traffic.Network, cps.WindowSpec, *cluster.Cluster) {
	t.Helper()
	net := traffic.GenerateNetwork(traffic.ScaledConfig(200))
	spec := cps.DefaultSpec()
	hw0 := net.Highways[0].Sensors
	hw2 := net.Highways[2].Sensors
	var g cluster.IDGen
	c := cluster.FromRecords(g.Next(), []cps.Record{
		{Sensor: hw0[0], Window: 97, Severity: 5},
		{Sensor: hw0[1], Window: 98, Severity: 3},
		{Sensor: hw2[0], Window: 99, Severity: 2},
	})
	return net, spec, c
}

func TestDescribe(t *testing.T) {
	net, spec, c := fixture(t)
	got := Describe(net, spec, c)
	for _, needle := range []string{"3 sensors", "10 severity-min", "most serious on", "peak window", net.Highways[0].Name} {
		if !strings.Contains(got, needle) {
			t.Errorf("Describe missing %q in %q", needle, got)
		}
	}
	if got := Describe(net, spec, &cluster.Cluster{ID: 5}); !strings.Contains(got, "empty") {
		t.Errorf("empty describe = %q", got)
	}
}

func TestRanking(t *testing.T) {
	net, spec, c := fixture(t)
	var g cluster.IDGen
	small := cluster.FromRecords(g.Next(), []cps.Record{
		{Sensor: net.Highways[1].Sensors[0], Window: 5, Severity: 1},
	})
	out := Ranking(net, spec, []*cluster.Cluster{small, c})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.HasPrefix(strings.TrimSpace(lines[0]), "1.") || !strings.Contains(lines[0], "10 severity-min") {
		t.Errorf("rank 1 should be the big cluster: %q", lines[0])
	}
}

func TestHourHistogram(t *testing.T) {
	net, spec, c := fixture(t)
	_ = net
	out := HourHistogram(spec, c, 40)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 24 {
		t.Fatalf("histogram lines = %d", len(lines))
	}
	// Windows 97-99 are hour 8; that row carries the full bar.
	if !strings.Contains(lines[8], strings.Repeat("#", 40)) {
		t.Errorf("hour 8 should carry the max bar: %q", lines[8])
	}
	if strings.Contains(lines[0], "#") {
		t.Errorf("hour 0 should be empty: %q", lines[0])
	}
}

func TestHighwayBreakdown(t *testing.T) {
	net, spec, c := fixture(t)
	_ = spec
	out := HighwayBreakdown(net, c)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("breakdown lines = %d: %q", len(lines), out)
	}
	if !strings.Contains(lines[0], net.Highways[0].Name) {
		t.Errorf("first row should be the dominant highway: %q", lines[0])
	}
	if !strings.Contains(lines[0], "80.0%") {
		t.Errorf("dominant share should be 80%%: %q", lines[0])
	}
}

func TestRegionHeatmap(t *testing.T) {
	net := traffic.GenerateNetwork(traffic.ScaledConfig(200))
	spec := cps.DefaultSpec()
	sev := cube.NewSeverityIndex(net, spec)
	// Load one region heavily.
	var target geo.RegionID = -1
	for _, r := range net.Grid.Regions() {
		if len(net.SensorsInRegion(r.ID)) > 0 {
			target = r.ID
			break
		}
	}
	if target == -1 {
		t.Skip("no populated region")
	}
	s := net.SensorsInRegion(target)[0]
	var recs []cps.Record
	for w := cps.Window(0); w < 100; w++ {
		recs = append(recs, cps.Record{Sensor: s, Window: w, Severity: 5})
	}
	sev.Add(recs)
	tr := cps.DayRange(spec, 0, 1)
	out := RegionHeatmap(net, sev, tr, []geo.RegionID{target})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != net.Grid.Rows+1 {
		t.Fatalf("heatmap lines = %d, want %d", len(lines), net.Grid.Rows+1)
	}
	if !strings.Contains(out, "[█]") {
		t.Errorf("loaded red zone should render as [█]:\n%s", out)
	}
	body := strings.Join(lines[1:], "\n")
	if strings.Count(body, "[") != 1 {
		t.Errorf("exactly one red zone expected in the map body:\n%s", out)
	}
}
