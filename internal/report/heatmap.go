package report

import (
	"fmt"
	"strings"

	"github.com/cpskit/atypical/internal/cps"
	"github.com/cpskit/atypical/internal/cube"
	"github.com/cpskit/atypical/internal/geo"
	"github.com/cpskit/atypical/internal/traffic"
)

// RegionHeatmap renders the pre-defined region grid as an ASCII severity
// map over the given period — the textual counterpart of the paper's
// Figs. 11–12: each cell shows its bottom-up severity bucket, and red
// zones are bracketed.
//
//	. none   ░ light   ▒ medium   ▓ heavy   █ extreme   [x] red zone
func RegionHeatmap(net *traffic.Network, sev *cube.SeverityIndex, tr cps.TimeRange, redZones []geo.RegionID) string {
	grid := net.Grid
	red := make(map[geo.RegionID]bool, len(redZones))
	for _, z := range redZones {
		red[z] = true
	}
	var max cps.Severity
	f := make([]cps.Severity, grid.NumRegions())
	for _, r := range grid.Regions() {
		f[r.ID] = sev.F(r.ID, tr)
		if f[r.ID] > max {
			max = f[r.ID]
		}
	}
	glyphs := []rune{'.', '░', '▒', '▓', '█'}
	var b strings.Builder
	fmt.Fprintf(&b, "region severity map, %d windows (north at top; [x] = red zone, max cell %.0f min)\n",
		tr.Len(), float64(max))
	for row := grid.Rows - 1; row >= 0; row-- {
		for col := 0; col < grid.Cols; col++ {
			id := geo.RegionID(row*grid.Cols + col)
			g := glyphs[0]
			if max > 0 && f[id] > 0 {
				bucket := int(f[id] / max * 4)
				if bucket > 4 {
					bucket = 4
				}
				if bucket == 0 {
					bucket = 1 // nonzero severity never renders as empty
				}
				g = glyphs[bucket]
			}
			if red[id] {
				fmt.Fprintf(&b, "[%c]", g)
			} else {
				fmt.Fprintf(&b, " %c ", g)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
