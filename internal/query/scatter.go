package query

import (
	"context"
	"sort"
	"time"

	"github.com/cpskit/atypical/internal/cluster"
	"github.com/cpskit/atypical/internal/cps"
	"github.com/cpskit/atypical/internal/geo"
	"github.com/cpskit/atypical/internal/traffic"
)

// Sharded query support. A Scatterer replaces only the candidates stage of a
// run: each shard answers "which of your stored micro-clusters are in the
// time range and touch W", and the coordinator re-establishes the canonical
// single-forest candidate order before the unchanged strategy pipeline
// (prune / red zones / integrate / significance) runs once, at the
// coordinator. Because micro-cluster IDs are assigned positionally at
// extraction time and every shard holds a disjoint slice of the same forest,
// sorting the union by (day, ID) reproduces MicrosInRange + filterTouching
// byte for byte — integration then sees identical inputs in identical order,
// so the whole answer is byte-identical to the unsharded one (Properties 2
// and 3 make the downstream algebra order-insensitive anyway; the sort makes
// it exact rather than merely equivalent).

// ShardResult is one shard's answer to a scatter: the candidate
// micro-clusters it owns that lie in the time range and touch W.
type ShardResult struct {
	// Shard names the answering shard (stable across runs).
	Shard string
	// Candidates are the shard's matching micro-clusters in its local
	// (day-ascending, ID-ascending) order.
	Candidates []*cluster.Cluster
}

// ScatterInfo summarizes one fan-out for the Result, EXPLAIN, and flight-
// recorder surfaces.
type ScatterInfo struct {
	// Shards is the total number of shards queried.
	Shards int
	// Failed names the shards that failed after retry, in scatter order.
	// Their candidates are missing from the gathered set: the run is
	// explicitly partial, never silently truncated.
	Failed []string
	// PerShard holds each shard's call timing in scatter order; nil when the
	// scatterer does not track timings.
	PerShard []ShardStat
}

// ShardStat is one shard's call timing within a fan-out.
type ShardStat struct {
	// Shard names the backend.
	Shard string
	// Duration is the wall-clock time of the call including any retry.
	Duration time.Duration
	// Retried reports whether the first attempt failed and was retried.
	Retried bool
	// Failed reports whether the shard was lost after retry.
	Failed bool
}

// Scatterer fans the candidates stage of a query out to shards. The engine
// treats a failed scatter (error return) as a failed run; per-shard failures
// that still leave at least one answering shard are reported through
// ScatterInfo.Failed instead, and the run proceeds flagged as partial.
type Scatterer interface {
	// NumShards reports the fan-out width (for EXPLAIN and metrics).
	NumShards() int
	// Scatter queries every shard for candidates in tr touching the region
	// set, concurrently, and returns the per-shard results.
	Scatter(ctx context.Context, tr cps.TimeRange, regions []geo.RegionID) ([]ShardResult, ScatterInfo, error)
}

// Touches reports whether any of the cluster's sensors lies in the region
// set — the "intersect with the red zones" test of Example 7, exported for
// shard backends that run the candidates filter locally.
func Touches(net *traffic.Network, c *cluster.Cluster, regions map[geo.RegionID]bool) bool {
	for _, entry := range c.SF {
		if regions[net.Sensor(entry.Key).Region] {
			return true
		}
	}
	return false
}

// mergeShardCandidates restores the canonical single-forest candidate order
// over the union of the shard answers. MicrosInRange iterates days ascending
// and, within a day, in append order — which is ID-ascending, because
// extraction reserves per-day ID blocks positionally and later appends draw
// monotonically increasing IDs. IDs are unique, so (day, ID) is a total
// order and the sort is deterministic.
func mergeShardCandidates(perDay cps.Window, shards []ShardResult) []*cluster.Cluster {
	total := 0
	for _, s := range shards {
		total += len(s.Candidates)
	}
	if total == 0 {
		return nil
	}
	out := make([]*cluster.Cluster, 0, total)
	for _, s := range shards {
		out = append(out, s.Candidates...)
	}
	day := func(c *cluster.Cluster) cps.Window {
		if len(c.TF) == 0 {
			return 0
		}
		return c.TF[0].Key / perDay
	}
	sort.Slice(out, func(i, j int) bool {
		di, dj := day(out[i]), day(out[j])
		if di != dj {
			return di < dj
		}
		return out[i].ID < out[j].ID
	})
	return out
}
