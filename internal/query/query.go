// Package query implements online analytical query processing (Section IV):
// given Q(W, T), return the significant atypical clusters in spatial region
// W and time period T. Three strategies are provided — the exhaustive
// integrate-All baseline, beforehand Pruning, and red-zone Guided clustering
// (Algorithm 4) — with the counted inputs and timings the paper's Figs. 17–19
// report.
package query

import (
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/cpskit/atypical/internal/cluster"
	"github.com/cpskit/atypical/internal/cps"
	"github.com/cpskit/atypical/internal/cube"
	"github.com/cpskit/atypical/internal/forest"
	"github.com/cpskit/atypical/internal/geo"
	"github.com/cpskit/atypical/internal/obs"
	"github.com/cpskit/atypical/internal/obs/flight"
	"github.com/cpskit/atypical/internal/par"
	"github.com/cpskit/atypical/internal/traffic"
)

// ErrUnknownStrategy reports a Strategy value outside All/Pru/Gui. It is
// part of the facade's exported error set (atypical.ErrUnknownStrategy
// aliases it), so callers test it with errors.Is at either layer.
var ErrUnknownStrategy = errors.New("atypical: unknown query strategy")

// Strategy selects the online clustering strategy of Section V-B.
type Strategy uint8

// The three strategies compared in the evaluation.
const (
	// All integrates every micro-cluster in range: exact, quadratic in the
	// inputs. Its significant clusters are the experiments' ground truth.
	All Strategy = iota
	// Pru prunes micro-clusters that are not significant at day scale
	// before integrating: fast, but loses recall — a micro-cluster that
	// contributes to a significant macro-cluster may be trivial by itself.
	Pru
	// Gui is red-zone guided clustering (Algorithm 4): prune only
	// micro-clusters entirely outside regions whose bottom-up severity
	// passes the significance bound, which is safe by Property 5.
	Gui
)

// String implements fmt.Stringer using the paper's labels.
func (s Strategy) String() string {
	switch s {
	case All:
		return "All"
	case Pru:
		return "Pru"
	case Gui:
		return "Gui"
	default:
		return fmt.Sprintf("Strategy(%d)", uint8(s))
	}
}

// Query is an analytical query Q(W, T) at relative severity threshold δs.
type Query struct {
	// Regions is the pre-defined region set covering W.
	Regions []geo.RegionID
	// Time is the day-aligned query period T.
	Time cps.TimeRange
	// DeltaS is the relative severity threshold δs of Definition 5.
	DeltaS float64
}

// CityQuery builds a query over the whole deployment for the given
// day-aligned period.
func CityQuery(net *traffic.Network, spec cps.WindowSpec, firstDay, days int, deltaS float64) Query {
	regions := make([]geo.RegionID, 0, net.Grid.NumRegions())
	for _, r := range net.Grid.Regions() {
		regions = append(regions, r.ID)
	}
	return Query{Regions: regions, Time: cps.DayRange(spec, firstDay, days), DeltaS: deltaS}
}

// BoxQuery builds a query over the regions intersecting box.
func BoxQuery(net *traffic.Network, spec cps.WindowSpec, box geo.BBox, firstDay, days int, deltaS float64) Query {
	return Query{
		Regions: net.Grid.RegionsIntersecting(box),
		Time:    cps.DayRange(spec, firstDay, days),
		DeltaS:  deltaS,
	}
}

// Result carries the outcome of one query run.
type Result struct {
	Strategy Strategy
	// Macros are the macro-clusters produced by integration, before the
	// significance filter — what the precision measurements score.
	Macros []*cluster.Cluster
	// Significant are the macros passing Definition 5 at query scale.
	Significant []*cluster.Cluster
	// InputMicros counts the micro-clusters fed to integration — the I/O
	// measure of Fig. 17(b).
	InputMicros int
	// CandidateMicros counts the micro-clusters in range before strategy
	// pruning.
	CandidateMicros int
	// RedZones counts the regions passing the bound (Gui only).
	RedZones int
	// Bound is the significance severity bound δs·length(T)·N used.
	Bound cps.Severity
	// Partial reports that at least one shard failed after retry during a
	// scattered run, so the answer may be missing that shard's candidates.
	// Partial answers are always explicitly flagged, never silent.
	Partial bool
	// FailedShards names the shards behind Partial, in scatter order.
	FailedShards []string
	// Elapsed is the wall-clock query time.
	Elapsed time.Duration
}

// Engine answers analytical queries against a built forest. An Engine is
// safe for concurrent use: every Run may execute alongside other runs and
// alongside forest/severity ingestion (both structures take read snapshots).
type Engine struct {
	Net *traffic.Network
	// Forest holds the materialized per-day micro-clusters.
	Forest *forest.Forest
	// Severity is the bottom-up index used for red zones. Built offline
	// alongside the forest.
	Severity *cube.SeverityIndex
	// Gen supplies IDs for online merges.
	Gen *cluster.IDGen
	// Workers selects the execution path of a single run: 0 keeps the
	// serial pipeline (byte-compatible with historical output), anything
	// else fans candidate filtering and integration out over that many
	// goroutines (< 0 means one per CPU). The parallel path's output does
	// not depend on the worker count.
	Workers int
	// Obs carries the engine's pre-resolved metric handles (NewMetrics).
	// nil — the default — disables instrumentation at the cost of one nil
	// check per run.
	Obs *Metrics
	// Scatterer, when non-nil, replaces the candidates stage of Run with a
	// scatter-gather fan-out over shards (see scatter.go). Forest must still
	// be set: it supplies the window spec and serves RunMaterialized, which
	// always reads locally.
	Scatterer Scatterer
	// Cache, when non-nil, serves repeated queries from the canonical-keyed
	// answer cache (cache.go). The lookup happens before the candidates
	// stage, so on a sharded engine a hit skips the whole scatter-gather
	// fan-out. Entries carry two stamps — the forest version and the
	// severity index generation — both read once at the top of the run,
	// before any forest or severity data, so a concurrent AppendDay or
	// severity write can only make a stored answer conservatively stale,
	// never silently fresh. The severity stamp matters because ingest bumps
	// the forest version before the severity index absorbs the same days: a
	// Guided run in that window pairs the new version with old red zones,
	// and without the second stamp would be cached as fresh indefinitely.
	Cache *AnswerCache
}

// Run executes q under the given strategy.
func (e *Engine) Run(q Query, s Strategy) *Result {
	res, err := e.RunCtx(context.Background(), q, s)
	if err != nil {
		// A background context cannot cancel, so the reachable errors are
		// ErrUnknownStrategy (a programming bug worth a loud stop) and,
		// with a Scatterer over remote backends, a whole-fan-out failure;
		// sharded callers wanting a soft failure path use RunCtx.
		panic(err)
	}
	return res
}

// RunCtx executes q under the given strategy with cooperative cancellation:
// the context is honored between pipeline stages and inside the parallel
// filter and integration loops. Every run — success or error — is recorded
// on Obs when configured, and wrapped in a "query.run" span when ctx
// carries a span exporter.
func (e *Engine) RunCtx(ctx context.Context, q Query, s Strategy) (*Result, error) {
	ctx, sp := obs.Start(ctx, "query.run")
	sp.SetAttr("strategy", s.String())
	if fe := flight.EventFromContext(ctx); fe != nil && sp != nil {
		fe.TraceID = sp.TraceHex()
	}
	res, err := e.runCtx(ctx, q, s)
	sp.End()
	e.Obs.observe(res, err)
	return res, err
}

// runCtx is the uninstrumented body of RunCtx.
func (e *Engine) runCtx(ctx context.Context, q Query, s Strategy) (*Result, error) {
	start := time.Now()
	res := &Result{Strategy: s}
	exp := ExplainFromContext(ctx)
	exp.reset()
	fe := flight.EventFromContext(ctx)

	ver := e.Forest.Version()
	sevGen := e.Severity.Gen()
	if fe != nil {
		fe.ForestVersion = ver
		fe.SeverityGen = sevGen
		fe.Cache = "off"
	}
	var key string
	if e.Cache != nil {
		if fe != nil {
			fe.Cache = "miss"
		}
		key = CanonicalKey(q, s)
		if hit, sensors, ok := e.Cache.get(key, ver, sevGen); ok {
			if fe != nil {
				fe.Cache = "hit"
				fe.Candidates = hit.CandidateMicros
				fe.Inputs = hit.InputMicros
				fe.Significant = len(hit.Significant)
			}
			st := exp.stageStart()
			exp.begin(q, s, sensors)
			exp.setBound(q.DeltaS, q.Time.Len(), sensors, float64(hit.Bound))
			exp.setForestVersion(ver)
			exp.setCandidates(hit.CandidateMicros, hit.InputMicros)
			exp.stageEnd(st, "cache", hit.CandidateMicros, len(hit.Significant))
			hit.Elapsed = time.Since(start)
			exp.finish(hit.Elapsed)
			return hit, nil
		}
	}

	numSensors := e.sensorsInRegions(q.Regions)
	res.Bound = cluster.SignificanceBound(q.DeltaS, q.Time.Len(), numSensors)
	exp.begin(q, s, numSensors)
	exp.setBound(q.DeltaS, q.Time.Len(), numSensors, float64(res.Bound))
	exp.setForestVersion(ver)

	inRegion := make(map[geo.RegionID]bool, len(q.Regions))
	for _, r := range q.Regions {
		inRegion[r] = true
	}

	// Candidates: micro-clusters in the time range touching W — served
	// locally, or gathered from shards when a Scatterer is configured.
	st := exp.stageStart()
	var candidates []*cluster.Cluster
	var err error
	if e.Scatterer != nil {
		shards, info, serr := e.Scatterer.Scatter(ctx, q.Time, q.Regions)
		if serr != nil {
			return nil, serr
		}
		gathered := 0
		for _, sr := range shards {
			gathered += len(sr.Candidates)
		}
		res.Partial = len(info.Failed) > 0
		res.FailedShards = info.Failed
		if fe != nil {
			fe.Partial = res.Partial
			fe.FailedShards = info.Failed
			if len(info.PerShard) > 0 {
				fe.Shards = make([]flight.ShardCall, len(info.PerShard))
				for i, ps := range info.PerShard {
					fe.Shards[i] = flight.ShardCall{
						Name:       ps.Shard,
						DurationNS: ps.Duration.Nanoseconds(),
						Retried:    ps.Retried,
						Failed:     ps.Failed,
					}
				}
			}
		}
		exp.stageEnd(st, "scatter", info.Shards, gathered)
		exp.setScatter(info, shards)
		st = exp.stageStart()
		candidates = mergeShardCandidates(cps.Window(e.Forest.Spec().PerDay()), shards)
		exp.stageEnd(st, "gather", gathered, len(candidates))
	} else {
		raw := e.Forest.MicrosInRange(q.Time)
		candidates, err = e.filterTouching(ctx, raw, inRegion)
		if err != nil {
			return nil, err
		}
		exp.stageEnd(st, "candidates", len(raw), len(candidates))
	}
	res.CandidateMicros = len(candidates)

	var inputs []*cluster.Cluster
	switch s {
	case All:
		inputs = candidates
	case Pru:
		// Beforehand pruning: keep micro-clusters significant at the scale
		// of one day (Example 6's "significant in the scale of one day").
		st = exp.stageStart()
		dayBound := cluster.SignificanceBound(q.DeltaS, e.Forest.Spec().PerDay(), numSensors)
		exp.setDayBound(float64(dayBound))
		for _, c := range candidates {
			if c.Significant(dayBound) {
				inputs = append(inputs, c)
			}
		}
		exp.stageEnd(st, "prune", len(candidates), len(inputs))
	case Gui:
		// Algorithm 4, lines 1–3: compute red zones from the distributive
		// bottom-up severity, drop micro-clusters entirely outside them.
		st = exp.stageStart()
		_, zsp := obs.Start(ctx, "query.redzones")
		zones := e.Severity.GuidedRedZones(q.Regions, q.Time, q.DeltaS, numSensors)
		zsp.End()
		res.RedZones = len(zones)
		if exp != nil {
			ids := make([]int, len(zones))
			for i, z := range zones {
				ids[i] = int(z)
			}
			exp.setRedZones(ids)
		}
		exp.stageEnd(st, "redzones", len(q.Regions), len(zones))
		st = exp.stageStart()
		zoneSet := make(map[geo.RegionID]bool, len(zones))
		for _, z := range zones {
			zoneSet[z] = true
		}
		inputs, err = e.filterTouching(ctx, candidates, zoneSet)
		if err != nil {
			return nil, err
		}
		exp.stageEnd(st, "guided_filter", len(candidates), len(inputs))
	default:
		return nil, fmt.Errorf("%w %v", ErrUnknownStrategy, s)
	}
	res.InputMicros = len(inputs)
	exp.setCandidates(res.CandidateMicros, res.InputMicros)

	// Algorithm 4 line 4: integrate the qualified micro-clusters.
	st = exp.stageStart()
	ictx, isp := obs.Start(ctx, "query.integrate")
	res.Macros, err = e.integrate(ictx, inputs)
	isp.End()
	if err != nil {
		return nil, err
	}
	exp.stageEnd(st, "integrate", len(inputs), len(res.Macros))
	exp.setMergeTree(e.Workers, len(inputs), len(res.Macros))

	// Lines 5–7: the significance check removing false positives.
	st = exp.stageStart()
	for _, c := range res.Macros {
		sig := c.Significant(res.Bound)
		if sig {
			res.Significant = append(res.Significant, c)
		}
		if exp != nil {
			exp.addVerdict(uint64(c.ID), float64(c.Severity()), sig)
		}
	}
	exp.stageEnd(st, "significance", len(res.Macros), len(res.Significant))
	if fe != nil {
		fe.Candidates = res.CandidateMicros
		fe.Inputs = res.InputMicros
		fe.Significant = len(res.Significant)
	}
	res.Elapsed = time.Since(start)
	exp.finish(res.Elapsed)
	if e.Cache != nil {
		// Partial answers are refused inside put; everything else is stamped
		// with the version and severity generation read before the first
		// data access, so an entry computed over state that changed mid-run
		// is stored already-stale and never served.
		e.Cache.put(key, ver, sevGen, numSensors, res)
	}
	return res, nil
}

// filterTouching keeps the clusters touching the region set, preserving
// input order. With Workers set, the touch tests fan out positionally so the
// output is identical to the serial filter.
func (e *Engine) filterTouching(ctx context.Context, cs []*cluster.Cluster, regions map[geo.RegionID]bool) ([]*cluster.Cluster, error) {
	if e.Workers == 0 || len(cs) == 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var out []*cluster.Cluster
		for _, c := range cs {
			if e.clusterTouches(c, regions) {
				out = append(out, c)
			}
		}
		return out, nil
	}
	keep := make([]bool, len(cs))
	if err := par.Do(ctx, len(cs), e.Workers, func(i int) error {
		keep[i] = e.clusterTouches(cs[i], regions)
		return nil
	}); err != nil {
		return nil, err
	}
	var out []*cluster.Cluster
	for i, c := range cs {
		if keep[i] {
			out = append(out, c)
		}
	}
	return out, nil
}

// integrate runs the configured integration path over the query inputs.
func (e *Engine) integrate(ctx context.Context, inputs []*cluster.Cluster) ([]*cluster.Cluster, error) {
	if e.Workers != 0 {
		return cluster.IntegrateParallelCtx(ctx, e.Gen, inputs, e.Forest.Options(), e.Workers)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return cluster.Integrate(e.Gen, inputs, e.Forest.Options()), nil
}

// RunMaterialized answers q with All semantics but starts from the forest's
// materialized levels instead of raw micro-clusters: fully covered weeks
// contribute their (memoized) week-level macro-clusters, ragged edge days
// contribute micro-clusters, and one final integration pass combines them.
// Property 3 (commutative/associative merging) makes the multi-level path
// equivalent to integrating the micro-clusters directly — this is the
// partially-materialized query processing of Section IV.
func (e *Engine) RunMaterialized(q Query) *Result {
	res, err := e.RunMaterializedCtx(context.Background(), q)
	if err != nil {
		panic(err) // background context cannot cancel; see Run
	}
	return res
}

// RunMaterializedCtx is RunMaterialized with cooperative cancellation. Runs
// record into Obs under the All strategy (the semantics they implement).
func (e *Engine) RunMaterializedCtx(ctx context.Context, q Query) (*Result, error) {
	ctx, sp := obs.Start(ctx, "query.run_materialized")
	res, err := e.runMaterializedCtx(ctx, q)
	sp.End()
	e.Obs.observe(res, err)
	return res, err
}

// runMaterializedCtx is the uninstrumented body of RunMaterializedCtx.
func (e *Engine) runMaterializedCtx(ctx context.Context, q Query) (*Result, error) {
	start := time.Now()
	res := &Result{Strategy: All}
	exp := ExplainFromContext(ctx)
	exp.reset()
	numSensors := e.sensorsInRegions(q.Regions)
	res.Bound = cluster.SignificanceBound(q.DeltaS, q.Time.Len(), numSensors)
	exp.begin(q, All, numSensors)
	exp.setBound(q.DeltaS, q.Time.Len(), numSensors, float64(res.Bound))
	exp.setForestVersion(e.Forest.Version())

	inRegion := make(map[geo.RegionID]bool, len(q.Regions))
	for _, r := range q.Regions {
		inRegion[r] = true
	}

	perDay := cps.Window(e.Forest.Spec().PerDay())
	firstDay := int(q.Time.From / perDay)
	lastDay := int(q.Time.To / perDay) // exclusive

	// Materialize: covered weeks contribute memoized week macros (each
	// lookup reports a memo event into the Explain), ragged days their
	// micro-clusters.
	st := exp.stageStart()
	var leaves []*cluster.Cluster
	day := firstDay
	for day < lastDay {
		if day%forest.DaysPerWeek == 0 && day+forest.DaysPerWeek <= lastDay {
			leaves = append(leaves, e.Forest.WeekCtx(ctx, day/forest.DaysPerWeek)...)
			day += forest.DaysPerWeek
			continue
		}
		leaves = append(leaves, e.Forest.Day(day)...)
		day++
	}
	exp.stageEnd(st, "materialize", lastDay-firstDay, len(leaves))
	res.CandidateMicros = len(leaves)
	st = exp.stageStart()
	inputs, err := e.filterTouching(ctx, leaves, inRegion)
	if err != nil {
		return nil, err
	}
	exp.stageEnd(st, "candidates", len(leaves), len(inputs))
	res.InputMicros = len(inputs)
	exp.setCandidates(res.CandidateMicros, res.InputMicros)
	st = exp.stageStart()
	ictx, isp := obs.Start(ctx, "query.integrate")
	res.Macros, err = e.integrate(ictx, inputs)
	isp.End()
	if err != nil {
		return nil, err
	}
	exp.stageEnd(st, "integrate", len(inputs), len(res.Macros))
	exp.setMergeTree(e.Workers, len(inputs), len(res.Macros))
	st = exp.stageStart()
	for _, c := range res.Macros {
		sig := c.Significant(res.Bound)
		if sig {
			res.Significant = append(res.Significant, c)
		}
		if exp != nil {
			exp.addVerdict(uint64(c.ID), float64(c.Severity()), sig)
		}
	}
	exp.stageEnd(st, "significance", len(res.Macros), len(res.Significant))
	res.Elapsed = time.Since(start)
	exp.finish(res.Elapsed)
	return res, nil
}

// sensorsInRegions returns N, the number of sensors inside the query region.
func (e *Engine) sensorsInRegions(regions []geo.RegionID) int {
	n := 0
	for _, r := range regions {
		n += len(e.Net.SensorsInRegion(r))
	}
	return n
}

// clusterTouches reports whether any of the cluster's sensors lies in the
// region set — the "intersect with the red zones" test of Example 7.
func (e *Engine) clusterTouches(c *cluster.Cluster, regions map[geo.RegionID]bool) bool {
	return Touches(e.Net, c, regions)
}
