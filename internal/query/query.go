// Package query implements online analytical query processing (Section IV):
// given Q(W, T), return the significant atypical clusters in spatial region
// W and time period T. Three strategies are provided — the exhaustive
// integrate-All baseline, beforehand Pruning, and red-zone Guided clustering
// (Algorithm 4) — with the counted inputs and timings the paper's Figs. 17–19
// report.
package query

import (
	"fmt"
	"time"

	"github.com/cpskit/atypical/internal/cluster"
	"github.com/cpskit/atypical/internal/cps"
	"github.com/cpskit/atypical/internal/cube"
	"github.com/cpskit/atypical/internal/forest"
	"github.com/cpskit/atypical/internal/geo"
	"github.com/cpskit/atypical/internal/traffic"
)

// Strategy selects the online clustering strategy of Section V-B.
type Strategy uint8

// The three strategies compared in the evaluation.
const (
	// All integrates every micro-cluster in range: exact, quadratic in the
	// inputs. Its significant clusters are the experiments' ground truth.
	All Strategy = iota
	// Pru prunes micro-clusters that are not significant at day scale
	// before integrating: fast, but loses recall — a micro-cluster that
	// contributes to a significant macro-cluster may be trivial by itself.
	Pru
	// Gui is red-zone guided clustering (Algorithm 4): prune only
	// micro-clusters entirely outside regions whose bottom-up severity
	// passes the significance bound, which is safe by Property 5.
	Gui
)

// String implements fmt.Stringer using the paper's labels.
func (s Strategy) String() string {
	switch s {
	case All:
		return "All"
	case Pru:
		return "Pru"
	case Gui:
		return "Gui"
	default:
		return fmt.Sprintf("Strategy(%d)", uint8(s))
	}
}

// Query is an analytical query Q(W, T) at relative severity threshold δs.
type Query struct {
	// Regions is the pre-defined region set covering W.
	Regions []geo.RegionID
	// Time is the day-aligned query period T.
	Time cps.TimeRange
	// DeltaS is the relative severity threshold δs of Definition 5.
	DeltaS float64
}

// CityQuery builds a query over the whole deployment for the given
// day-aligned period.
func CityQuery(net *traffic.Network, spec cps.WindowSpec, firstDay, days int, deltaS float64) Query {
	regions := make([]geo.RegionID, 0, net.Grid.NumRegions())
	for _, r := range net.Grid.Regions() {
		regions = append(regions, r.ID)
	}
	return Query{Regions: regions, Time: cps.DayRange(spec, firstDay, days), DeltaS: deltaS}
}

// BoxQuery builds a query over the regions intersecting box.
func BoxQuery(net *traffic.Network, spec cps.WindowSpec, box geo.BBox, firstDay, days int, deltaS float64) Query {
	return Query{
		Regions: net.Grid.RegionsIntersecting(box),
		Time:    cps.DayRange(spec, firstDay, days),
		DeltaS:  deltaS,
	}
}

// Result carries the outcome of one query run.
type Result struct {
	Strategy Strategy
	// Macros are the macro-clusters produced by integration, before the
	// significance filter — what the precision measurements score.
	Macros []*cluster.Cluster
	// Significant are the macros passing Definition 5 at query scale.
	Significant []*cluster.Cluster
	// InputMicros counts the micro-clusters fed to integration — the I/O
	// measure of Fig. 17(b).
	InputMicros int
	// CandidateMicros counts the micro-clusters in range before strategy
	// pruning.
	CandidateMicros int
	// RedZones counts the regions passing the bound (Gui only).
	RedZones int
	// Bound is the significance severity bound δs·length(T)·N used.
	Bound cps.Severity
	// Elapsed is the wall-clock query time.
	Elapsed time.Duration
}

// Engine answers analytical queries against a built forest.
type Engine struct {
	Net *traffic.Network
	// Forest holds the materialized per-day micro-clusters.
	Forest *forest.Forest
	// Severity is the bottom-up index used for red zones. Built offline
	// alongside the forest.
	Severity *cube.SeverityIndex
	// Gen supplies IDs for online merges.
	Gen *cluster.IDGen
}

// Run executes q under the given strategy.
func (e *Engine) Run(q Query, s Strategy) *Result {
	start := time.Now()
	res := &Result{Strategy: s}

	numSensors := e.sensorsInRegions(q.Regions)
	res.Bound = cluster.SignificanceBound(q.DeltaS, q.Time.Len(), numSensors)

	inRegion := make(map[geo.RegionID]bool, len(q.Regions))
	for _, r := range q.Regions {
		inRegion[r] = true
	}

	// Candidates: micro-clusters in the time range touching W.
	var candidates []*cluster.Cluster
	for _, c := range e.Forest.MicrosInRange(q.Time) {
		if e.clusterTouches(c, inRegion) {
			candidates = append(candidates, c)
		}
	}
	res.CandidateMicros = len(candidates)

	var inputs []*cluster.Cluster
	switch s {
	case All:
		inputs = candidates
	case Pru:
		// Beforehand pruning: keep micro-clusters significant at the scale
		// of one day (Example 6's "significant in the scale of one day").
		dayBound := cluster.SignificanceBound(q.DeltaS, e.Forest.Spec().PerDay(), numSensors)
		for _, c := range candidates {
			if c.Significant(dayBound) {
				inputs = append(inputs, c)
			}
		}
	case Gui:
		// Algorithm 4, lines 1–3: compute red zones from the distributive
		// bottom-up severity, drop micro-clusters entirely outside them.
		zones := e.Severity.GuidedRedZones(q.Regions, q.Time, q.DeltaS, numSensors)
		res.RedZones = len(zones)
		zoneSet := make(map[geo.RegionID]bool, len(zones))
		for _, z := range zones {
			zoneSet[z] = true
		}
		for _, c := range candidates {
			if e.clusterTouches(c, zoneSet) {
				inputs = append(inputs, c)
			}
		}
	default:
		panic(fmt.Sprintf("query: unknown strategy %d", s))
	}
	res.InputMicros = len(inputs)

	// Algorithm 4 line 4: integrate the qualified micro-clusters.
	res.Macros = cluster.Integrate(e.Gen, inputs, e.Forest.Options())

	// Lines 5–7: the significance check removing false positives.
	for _, c := range res.Macros {
		if c.Significant(res.Bound) {
			res.Significant = append(res.Significant, c)
		}
	}
	res.Elapsed = time.Since(start)
	return res
}

// RunMaterialized answers q with All semantics but starts from the forest's
// materialized levels instead of raw micro-clusters: fully covered weeks
// contribute their (memoized) week-level macro-clusters, ragged edge days
// contribute micro-clusters, and one final integration pass combines them.
// Property 3 (commutative/associative merging) makes the multi-level path
// equivalent to integrating the micro-clusters directly — this is the
// partially-materialized query processing of Section IV.
func (e *Engine) RunMaterialized(q Query) *Result {
	start := time.Now()
	res := &Result{Strategy: All}
	numSensors := e.sensorsInRegions(q.Regions)
	res.Bound = cluster.SignificanceBound(q.DeltaS, q.Time.Len(), numSensors)

	inRegion := make(map[geo.RegionID]bool, len(q.Regions))
	for _, r := range q.Regions {
		inRegion[r] = true
	}

	perDay := cps.Window(e.Forest.Spec().PerDay())
	firstDay := int(q.Time.From / perDay)
	lastDay := int(q.Time.To / perDay) // exclusive

	var leaves []*cluster.Cluster
	day := firstDay
	for day < lastDay {
		if day%forest.DaysPerWeek == 0 && day+forest.DaysPerWeek <= lastDay {
			leaves = append(leaves, e.Forest.Week(day/forest.DaysPerWeek)...)
			day += forest.DaysPerWeek
			continue
		}
		leaves = append(leaves, e.Forest.Day(day)...)
		day++
	}
	res.CandidateMicros = len(leaves)
	var inputs []*cluster.Cluster
	for _, c := range leaves {
		if e.clusterTouches(c, inRegion) {
			inputs = append(inputs, c)
		}
	}
	res.InputMicros = len(inputs)
	res.Macros = cluster.Integrate(e.Gen, inputs, e.Forest.Options())
	for _, c := range res.Macros {
		if c.Significant(res.Bound) {
			res.Significant = append(res.Significant, c)
		}
	}
	res.Elapsed = time.Since(start)
	return res
}

// sensorsInRegions returns N, the number of sensors inside the query region.
func (e *Engine) sensorsInRegions(regions []geo.RegionID) int {
	n := 0
	for _, r := range regions {
		n += len(e.Net.SensorsInRegion(r))
	}
	return n
}

// clusterTouches reports whether any of the cluster's sensors lies in the
// region set — the "intersect with the red zones" test of Example 7.
func (e *Engine) clusterTouches(c *cluster.Cluster, regions map[geo.RegionID]bool) bool {
	for _, entry := range c.SF {
		if regions[e.Net.Sensor(entry.Key).Region] {
			return true
		}
	}
	return false
}
