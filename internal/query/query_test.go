package query

import (
	"testing"
	"time"

	"github.com/cpskit/atypical/internal/cluster"
	"github.com/cpskit/atypical/internal/cps"
	"github.com/cpskit/atypical/internal/cube"
	"github.com/cpskit/atypical/internal/forest"
	"github.com/cpskit/atypical/internal/gen"
	"github.com/cpskit/atypical/internal/geo"
	"github.com/cpskit/atypical/internal/index"
	"github.com/cpskit/atypical/internal/traffic"
)

// pipeline builds the full offline stack over a synthetic month: network,
// workload, micro-cluster extraction per day, forest, severity index.
func pipeline(t testing.TB, sensors, days int) (*Engine, cps.WindowSpec) {
	t.Helper()
	net := traffic.GenerateNetwork(traffic.ScaledConfig(sensors))
	spec := cps.DefaultSpec()
	cfg := gen.DefaultConfig(net)
	cfg.DaysPerMonth = days
	g, err := gen.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ds := g.Month(0)

	locs := sensorLocs(net)
	neighbors := index.NewNeighborIndex(locs, 1.5).NeighborLists()
	maxGap := cluster.MaxWindowGap(15*time.Minute, spec.Width)

	var idgen cluster.IDGen
	opts := cluster.IntegrateOptions{SimThreshold: 0.5, Balance: cluster.Arithmetic, Period: cps.Window(spec.PerDay())}
	f := forest.New(spec, &idgen, opts, days)
	for day, recs := range ds.Atypical.SplitByDay(spec) {
		f.AddDay(day, cluster.ExtractMicroClusters(&idgen, recs, neighbors, maxGap))
	}
	sev := cube.NewSeverityIndex(net, spec)
	sev.Add(ds.Atypical.Records())
	return &Engine{Net: net, Forest: f, Severity: sev, Gen: &idgen}, spec
}

func sensorLocs(net *traffic.Network) []geo.Point {
	locs := make([]geo.Point, net.NumSensors())
	for i, s := range net.Sensors {
		locs[i] = s.Loc
	}
	return locs
}

func TestStrategyString(t *testing.T) {
	if All.String() != "All" || Pru.String() != "Pru" || Gui.String() != "Gui" {
		t.Error("strategy names")
	}
	if Strategy(9).String() != "Strategy(9)" {
		t.Error("unknown strategy name")
	}
}

func TestCityQueryCoversGrid(t *testing.T) {
	net := traffic.GenerateNetwork(traffic.ScaledConfig(200))
	spec := cps.DefaultSpec()
	q := CityQuery(net, spec, 0, 7, 0.05)
	if len(q.Regions) != net.Grid.NumRegions() {
		t.Errorf("regions = %d, want %d", len(q.Regions), net.Grid.NumRegions())
	}
	if q.Time.Days(spec) != 7 {
		t.Errorf("days = %d", q.Time.Days(spec))
	}
}

func TestBoxQuery(t *testing.T) {
	net := traffic.GenerateNetwork(traffic.ScaledConfig(200))
	spec := cps.DefaultSpec()
	half := net.Grid.Box
	half.Max.Lon = (half.Min.Lon + half.Max.Lon) / 2
	q := BoxQuery(net, spec, half, 0, 7, 0.05)
	if len(q.Regions) == 0 || len(q.Regions) >= net.Grid.NumRegions() {
		t.Errorf("box query regions = %d of %d", len(q.Regions), net.Grid.NumRegions())
	}
}

func TestRunAllBasics(t *testing.T) {
	e, spec := pipeline(t, 250, 7)
	q := CityQuery(e.Net, spec, 0, 7, 0.01)
	res := e.Run(q, All)
	if res.InputMicros != res.CandidateMicros {
		t.Errorf("All must integrate every candidate: %d vs %d", res.InputMicros, res.CandidateMicros)
	}
	if res.InputMicros == 0 {
		t.Fatal("no micro-clusters in range; workload broken")
	}
	if len(res.Macros) == 0 {
		t.Fatal("no macros produced")
	}
	// Severity conservation through integration: the macros carry exactly
	// the severity of the candidate micro-clusters (those touching W).
	inRegion := make(map[geo.RegionID]bool)
	for _, r := range q.Regions {
		inRegion[r] = true
	}
	var inSev, outSev cps.Severity
	for _, c := range e.Forest.MicrosInRange(q.Time) {
		touches := false
		for _, entry := range c.SF {
			if inRegion[e.Net.Sensor(entry.Key).Region] {
				touches = true
				break
			}
		}
		if touches {
			inSev += c.Severity()
		}
	}
	for _, c := range res.Macros {
		outSev += c.Severity()
	}
	if diff := float64(inSev - outSev); diff > 1e-6*float64(inSev) || diff < -1e-6*float64(inSev) {
		t.Errorf("severity not conserved: in %v out %v", inSev, outSev)
	}
	if res.Elapsed <= 0 {
		t.Error("elapsed not recorded")
	}
	// Significant ⊆ Macros, all above bound.
	for _, c := range res.Significant {
		if !c.Significant(res.Bound) {
			t.Error("insignificant cluster in Significant")
		}
	}
}

func TestRunPruReducesInputs(t *testing.T) {
	e, spec := pipeline(t, 250, 7)
	q := CityQuery(e.Net, spec, 0, 7, 0.01)
	all := e.Run(q, All)
	pru := e.Run(q, Pru)
	if pru.InputMicros > all.InputMicros {
		t.Errorf("Pru inputs %d > All inputs %d", pru.InputMicros, all.InputMicros)
	}
	if pru.InputMicros == all.InputMicros {
		t.Log("warning: Pru pruned nothing on this workload")
	}
}

func TestRunGuiPrunesAndKeepsSignificant(t *testing.T) {
	e, spec := pipeline(t, 250, 7)
	q := CityQuery(e.Net, spec, 0, 7, 0.01)
	all := e.Run(q, All)
	gui := e.Run(q, Gui)
	if gui.InputMicros > all.InputMicros {
		t.Errorf("Gui inputs %d > All inputs %d", gui.InputMicros, all.InputMicros)
	}
	if gui.RedZones == 0 && len(all.Significant) > 0 {
		t.Error("significant clusters exist but no red zones found")
	}
	// Gui must retrieve every significant cluster All finds (the paper's
	// no-false-negative claim): match by similarity.
	for _, want := range all.Significant {
		found := false
		for _, got := range gui.Significant {
			if cluster.Similarity(want, got, cluster.Arithmetic) >= 0.5 {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("Gui missed significant cluster %v", want)
		}
	}
}

func TestRunSubRegionQuery(t *testing.T) {
	e, spec := pipeline(t, 250, 7)
	city := CityQuery(e.Net, spec, 0, 7, 0.01)
	half := e.Net.Grid.Box
	half.Max.Lat = (half.Min.Lat + half.Max.Lat) / 2
	q := BoxQuery(e.Net, spec, half, 0, 7, 0.01)
	resCity := e.Run(city, All)
	res := e.Run(q, All)
	if res.CandidateMicros > resCity.CandidateMicros {
		t.Errorf("sub-region candidates %d > city candidates %d", res.CandidateMicros, resCity.CandidateMicros)
	}
}

func TestRunTimeSubrangeMonotone(t *testing.T) {
	e, spec := pipeline(t, 250, 7)
	short := e.Run(CityQuery(e.Net, spec, 0, 2, 0.01), All)
	long := e.Run(CityQuery(e.Net, spec, 0, 7, 0.01), All)
	if short.CandidateMicros > long.CandidateMicros {
		t.Errorf("2-day candidates %d > 7-day candidates %d", short.CandidateMicros, long.CandidateMicros)
	}
	if short.Bound >= long.Bound {
		t.Error("significance bound must grow with the query range")
	}
}

func TestRunUnknownStrategyPanics(t *testing.T) {
	e, spec := pipeline(t, 200, 2)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	e.Run(CityQuery(e.Net, spec, 0, 1, 0.05), Strategy(42))
}

func TestEmptyRangeQuery(t *testing.T) {
	e, spec := pipeline(t, 200, 2)
	res := e.Run(CityQuery(e.Net, spec, 40, 5, 0.05), All) // beyond data
	if res.CandidateMicros != 0 || len(res.Macros) != 0 {
		t.Errorf("out-of-range query returned data: %+v", res)
	}
}

func TestRunMaterializedMatchesAll(t *testing.T) {
	e, spec := pipeline(t, 250, 14)
	q := CityQuery(e.Net, spec, 0, 14, 0.02)
	all := e.Run(q, All)
	mat := e.RunMaterialized(q)

	// Severity is conserved identically (Property 3: merging is
	// commutative and associative, so multi-level integration carries the
	// same mass).
	var allSev, matSev cps.Severity
	for _, c := range all.Macros {
		allSev += c.Severity()
	}
	for _, c := range mat.Macros {
		matSev += c.Severity()
	}
	if d := float64(allSev - matSev); d > 1e-6*float64(allSev) || d < -1e-6*float64(allSev) {
		t.Errorf("severity: all %v, materialized %v", allSev, matSev)
	}
	// The significant sets match cluster for cluster.
	if len(mat.Significant) != len(all.Significant) {
		t.Fatalf("significant: all %d, materialized %d", len(all.Significant), len(mat.Significant))
	}
	for _, want := range all.Significant {
		found := false
		for _, got := range mat.Significant {
			if cluster.SimilarityAt(want, got, cluster.Arithmetic, cps.Window(spec.PerDay())) >= 0.5 {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("materialized path missed significant cluster %v", want)
		}
	}
	// Second run hits the memoized weeks: it must see far fewer inputs
	// than the micro path.
	again := e.RunMaterialized(q)
	if again.InputMicros >= all.InputMicros {
		t.Errorf("materialized inputs %d should be below micro inputs %d", again.InputMicros, all.InputMicros)
	}
}

func TestRunMaterializedRaggedRange(t *testing.T) {
	e, spec := pipeline(t, 250, 14)
	// Days [3, 12): no aligned week boundary at the start.
	q := Query{Regions: CityQuery(e.Net, spec, 0, 14, 0.02).Regions, Time: cps.DayRange(spec, 3, 9), DeltaS: 0.02}
	all := e.Run(q, All)
	mat := e.RunMaterialized(q)
	var allSev, matSev cps.Severity
	for _, c := range all.Macros {
		allSev += c.Severity()
	}
	for _, c := range mat.Macros {
		matSev += c.Severity()
	}
	if d := float64(allSev - matSev); d > 1e-6*float64(allSev) || d < -1e-6*float64(allSev) {
		t.Errorf("ragged severity: all %v, materialized %v", allSev, matSev)
	}
}
