package query

import (
	"math"
	"strings"
	"testing"

	"github.com/cpskit/atypical/internal/cluster"
	"github.com/cpskit/atypical/internal/cps"
	"github.com/cpskit/atypical/internal/geo"
	"github.com/cpskit/atypical/internal/obs"
)

func cacheResult(candidates int) *Result {
	return &Result{
		Strategy:        All,
		CandidateMicros: candidates,
		Macros:          []*cluster.Cluster{{ID: 1}},
		Significant:     []*cluster.Cluster{{ID: 1}},
	}
}

// The LRU contract: hits refresh recency, capacity evicts the coldest key,
// and every transition lands in Stats and the bound metric families.
func TestAnswerCacheLRUAndCounters(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewAnswerCache(2)
	c.BindMetrics(reg)

	if _, _, ok := c.get("a", 1, 0); ok {
		t.Fatal("empty cache claimed a hit")
	}
	c.put("a", 1, 0, 10, cacheResult(1))
	c.put("b", 1, 0, 10, cacheResult(2))
	if res, sensors, ok := c.get("a", 1, 0); !ok || sensors != 10 || res.CandidateMicros != 1 {
		t.Fatalf("get(a) = %+v, %d, %v", res, sensors, ok)
	}
	// "b" is now coldest; inserting "c" evicts it.
	c.put("c", 1, 0, 10, cacheResult(3))
	if _, _, ok := c.get("b", 1, 0); ok {
		t.Fatal("LRU kept the coldest entry")
	}
	if _, _, ok := c.get("c", 1, 0); !ok {
		t.Fatal("fresh entry missing")
	}
	hits, misses, evictions := c.Stats()
	if hits != 2 || misses != 2 || evictions != 1 {
		t.Fatalf("stats = %d/%d/%d, want 2 hits, 2 misses, 1 eviction", hits, misses, evictions)
	}
	snap := reg.Snapshot()
	for name, want := range map[string]float64{
		"atyp_query_cache_hits_total":      2,
		"atyp_query_cache_misses_total":    2,
		"atyp_query_cache_evictions_total": 1,
	} {
		if v, ok := snap.Value(name); !ok || v != want {
			t.Errorf("%s = %v (present=%v), want %v", name, v, ok, want)
		}
	}
}

// A version mismatch drops the entry (one eviction) and reports a miss —
// the AppendDay invalidation path.
func TestAnswerCacheVersionStale(t *testing.T) {
	c := NewAnswerCache(4)
	c.put("a", 1, 0, 10, cacheResult(1))
	if _, _, ok := c.get("a", 2, 0); ok {
		t.Fatal("stale version served")
	}
	if c.Len() != 0 {
		t.Fatalf("stale entry retained: len=%d", c.Len())
	}
	_, misses, evictions := c.Stats()
	if misses != 1 || evictions != 1 {
		t.Fatalf("stale lookup counted %d misses, %d evictions; want 1, 1", misses, evictions)
	}
}

// A severity-generation mismatch drops the entry exactly like a forest
// version mismatch — the stamp that retires answers computed over a
// severity state that changed without a forest bump (the ingest
// AppendDay→AddDays window, RebuildSeverity).
func TestAnswerCacheSeverityGenStale(t *testing.T) {
	c := NewAnswerCache(4)
	c.put("a", 1, 7, 10, cacheResult(1))
	if _, _, ok := c.get("a", 1, 7); !ok {
		t.Fatal("matching stamps missed")
	}
	if _, _, ok := c.get("a", 1, 8); ok {
		t.Fatal("severity-stale entry served")
	}
	if c.Len() != 0 {
		t.Fatalf("severity-stale entry retained: len=%d", c.Len())
	}
	hits, misses, evictions := c.Stats()
	if hits != 1 || misses != 1 || evictions != 1 {
		t.Fatalf("stats = %d/%d/%d, want 1 hit, 1 miss, 1 eviction", hits, misses, evictions)
	}
}

// The ingest-race regression: a Guided answer cached against one severity
// state must not be replayed after the severity index changes under an
// unchanged forest version. Before the severity generation stamp, this
// sequence (severity write with no AppendDay — exactly what a query racing
// ingest's AppendDay→AddDays window produces, and what RebuildSeverity does
// wholesale) served the first answer as fresh forever.
func TestEngineCacheInvalidatedBySeverityChange(t *testing.T) {
	e, spec := pipeline(t, 30, 3)
	e.Cache = NewAnswerCache(8)
	q := CityQuery(e.Net, spec, 0, 3, 0.02)

	first := e.Run(q, Gui)
	if hits, misses, _ := e.Cache.Stats(); hits != 0 || misses != 1 {
		t.Fatalf("first run stats = %d hits/%d misses, want 0/1", hits, misses)
	}
	second := e.Run(q, Gui)
	if hits, _, _ := e.Cache.Stats(); hits != 1 {
		t.Fatal("repeat run did not hit the cache")
	}
	if second.RedZones != first.RedZones || len(second.Significant) != len(first.Significant) {
		t.Fatal("cache hit changed the answer")
	}

	// Severity changes, forest version does not: the cached Guided answer
	// must be retired, not replayed.
	e.Severity.Add([]cps.Record{{Sensor: 0, Window: 0, Severity: 1}})
	e.Run(q, Gui)
	hits, misses, evictions := e.Cache.Stats()
	if hits != 1 || misses != 2 || evictions != 1 {
		t.Fatalf("post-severity-change stats = %d/%d/%d, want 1 hit, 2 misses, 1 eviction", hits, misses, evictions)
	}
}

// Partial results must never be stored, nil caches are inert, and returned
// results are slice copies the caller may mutate freely.
func TestAnswerCacheSafety(t *testing.T) {
	var nilCache *AnswerCache
	nilCache.put("a", 1, 0, 10, cacheResult(1))
	if _, _, ok := nilCache.get("a", 1, 0); ok {
		t.Fatal("nil cache served an answer")
	}
	nilCache.Clear()
	if h, m, e := nilCache.Stats(); h != 0 || m != 0 || e != 0 {
		t.Fatal("nil cache has stats")
	}
	if NewAnswerCache(0) != nil {
		t.Fatal("zero-entry cache not disabled")
	}

	c := NewAnswerCache(2)
	partial := cacheResult(1)
	partial.Partial = true
	partial.FailedShards = []string{"shard1"}
	c.put("p", 1, 0, 10, partial)
	if _, _, ok := c.get("p", 1, 0); ok {
		t.Fatal("partial result was cached")
	}

	c.put("a", 1, 0, 10, cacheResult(5))
	got, _, _ := c.get("a", 1, 0)
	got.Significant = got.Significant[:0] // caller truncates its copy
	again, _, _ := c.get("a", 1, 0)
	if len(again.Significant) != 1 {
		t.Fatal("caller mutation corrupted the cached answer")
	}
}

// FuzzCanonicalKeyCollisionFree drives random query pairs through
// CanonicalKey: equal keys must mean semantically equal queries (strategy,
// window, δs bits, region sequence), and equal queries must agree on key —
// the no-collision contract the answer cache's correctness rests on.
func FuzzCanonicalKeyCollisionFree(f *testing.F) {
	f.Add(int16(0), int16(96), 0.02, uint8(0), uint8(3), int16(10), int16(200), 0.02, uint8(1), uint8(3))
	f.Add(int16(5), int16(5), 0.0, uint8(2), uint8(0), int16(5), int16(5), 0.0, uint8(2), uint8(0))
	f.Add(int16(-3), int16(7), -0.5, uint8(1), uint8(8), int16(3), int16(7), 0.5, uint8(1), uint8(8))
	f.Fuzz(func(t *testing.T, from1, to1 int16, d1 float64, s1, n1 uint8,
		from2, to2 int16, d2 float64, s2, n2 uint8) {
		mk := func(from, to int16, d float64, s, n uint8) (Query, Strategy) {
			regions := make([]geo.RegionID, int(n)%9)
			for i := range regions {
				// Region sequences derived from the same (seed, length) pair
				// collide across the two queries exactly when the inputs
				// agree — what the equality check below expects.
				regions[i] = geo.RegionID(int(s)+i*int(n)) % 16
			}
			q := Query{
				Regions: regions,
				Time:    cps.TimeRange{From: cps.Window(from), To: cps.Window(to)},
				DeltaS:  d,
			}
			return q, Strategy(s % 3)
		}
		qa, sa := mk(from1, to1, d1, s1, n1)
		qb, sb := mk(from2, to2, d2, s2, n2)
		ka, kb := CanonicalKey(qa, sa), CanonicalKey(qb, sb)

		// δs identity is the bit pattern, not ==: the key must separate
		// -0.0 from +0.0 (different bounds are conceivable) and must unify
		// identical NaN payloads.
		same := sa == sb && qa.Time == qb.Time &&
			math.Float64bits(qa.DeltaS) == math.Float64bits(qb.DeltaS) &&
			len(qa.Regions) == len(qb.Regions)
		if same {
			for i := range qa.Regions {
				if qa.Regions[i] != qb.Regions[i] {
					same = false
					break
				}
			}
		}
		if same && ka != kb {
			t.Fatalf("equal queries, different keys:\n%q\n%q", ka, kb)
		}
		if !same && ka == kb {
			t.Fatalf("distinct queries collided on key %q:\n%+v %v\n%+v %v", ka, qa, sa, qb, sb)
		}
		if strings.Count(ka, "|") != 4 {
			t.Fatalf("key %q lost its field structure", ka)
		}
	})
}
