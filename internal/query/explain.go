// Query EXPLAIN. The paper's contribution is a cost/accuracy trade between
// the All/Pru/Gui strategies; aggregate counters (metrics.go) show the
// trade across traffic, but debugging one slow or surprising query needs
// the per-run story: which strategy ran, how many micro-clusters each stage
// saw and shed, which red zones Gui consulted, how the forest's memo cache
// behaved, the shape of the integration merge tree, and the significance
// bound arithmetic δs·length(T)·N applied to each macro-cluster's actual
// severity. An Explain record captures exactly that.
//
// Collection is per-request and context-armed, matching the span/metrics
// contract: WithExplain returns a context carrying an empty record, the
// engine fills it during the run, and with no record armed every hook is a
// single context lookup — the result is never affected either way (the
// byte-identity tests run with explain armed).

package query

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"github.com/cpskit/atypical/internal/cluster"
	"github.com/cpskit/atypical/internal/obs"
)

// explainRedZoneCap bounds the region IDs embedded per record; the count
// is always exact.
const explainRedZoneCap = 128

// explainVerdictCap bounds the per-macro significance verdicts embedded per
// record; the aggregate counts are always exact.
const explainVerdictCap = 256

// Explain is the structured record of one query run. Field order is fixed
// (encoding/json emits struct fields in declaration order), and every
// embedded slice is produced in a deterministic order, so two runs over
// identical state marshal to identical bytes once timings are zeroed via
// Canonical.
type Explain struct {
	// Strategy is the paper's label for the executed strategy.
	Strategy string `json:"strategy"`
	// Query describes the question asked.
	Query ExplainQuery `json:"query"`
	// Threshold is the significance bound math of Definition 5.
	Threshold ExplainThreshold `json:"threshold"`
	// Stages lists the pipeline stages in execution order with timings and
	// input/output cardinalities.
	Stages []ExplainStage `json:"stages"`
	// Candidates summarizes the strategy's pruning behaviour.
	Candidates ExplainCandidates `json:"candidates"`
	// RedZones is present on Gui runs only.
	RedZones *ExplainRedZones `json:"red_zones,omitempty"`
	// Scatter is present on sharded runs only: the per-shard fan-out behind
	// the scatter/gather stages.
	Scatter *ExplainScatter `json:"scatter,omitempty"`
	// Forest describes the forest state consulted and the memoized-level
	// path taken (materialized runs).
	Forest ExplainForest `json:"forest"`
	// MergeTree is the integration shape.
	MergeTree ExplainMergeTree `json:"merge_tree"`
	// Significance holds the per-macro verdicts of the final filter.
	Significance ExplainSignificance `json:"significance"`
	// ElapsedNS is the run's wall-clock time.
	ElapsedNS int64 `json:"elapsed_ns"`
}

// ExplainQuery is the question: spatial extent, time range, threshold.
type ExplainQuery struct {
	Regions    int     `json:"regions"`
	Sensors    int     `json:"sensors"`
	FromWindow int64   `json:"from_window"`
	ToWindow   int64   `json:"to_window"`
	Windows    int     `json:"windows"`
	DeltaS     float64 `json:"delta_s"`
}

// ExplainThreshold spells out bound = δs · length(T) · N with the inputs.
type ExplainThreshold struct {
	DeltaS  float64 `json:"delta_s"`
	LengthT int     `json:"length_t"`
	Sensors int     `json:"sensors"`
	Bound   float64 `json:"bound"`
	// DayBound is the day-scale bound Pru prunes against, absent otherwise.
	DayBound *float64 `json:"day_bound,omitempty"`
}

// ExplainStage is one timed pipeline stage.
type ExplainStage struct {
	Name       string `json:"name"`
	In         int    `json:"in"`
	Out        int    `json:"out"`
	DurationNS int64  `json:"duration_ns"`
}

// ExplainCandidates summarizes strategy pruning: Scanned candidates in
// range, Pruned = Scanned - Kept, Kept fed to integration.
type ExplainCandidates struct {
	Scanned int `json:"scanned"`
	Pruned  int `json:"pruned"`
	Kept    int `json:"kept"`
}

// ExplainRedZones reports the red zones a Gui run consulted. Regions is
// ascending by ID and capped at explainRedZoneCap entries; Count is exact.
type ExplainRedZones struct {
	Count     int   `json:"count"`
	Regions   []int `json:"regions"`
	Truncated bool  `json:"truncated,omitempty"`
}

// ExplainScatter reports a sharded run's fan-out: how many shards were
// queried, what each contributed, and which failed (leaving the answer
// explicitly partial).
type ExplainScatter struct {
	Shards   int            `json:"shards"`
	PerShard []ExplainShard `json:"per_shard"`
	Failed   []string       `json:"failed,omitempty"`
	Partial  bool           `json:"partial,omitempty"`
}

// ExplainShard is one shard's contribution to a scatter, in scatter order.
type ExplainShard struct {
	Name   string `json:"name"`
	Micros int    `json:"micros"`
}

// ExplainMemo is one memoized-level lookup inside the forest.
type ExplainMemo struct {
	Level   string `json:"level"`
	Index   int    `json:"index"`
	Hit     bool   `json:"hit"`
	Version uint64 `json:"version"`
}

// ExplainForest ties the answer to a forest state.
type ExplainForest struct {
	// Version is the forest's write-version counter at run time.
	Version uint64 `json:"version"`
	// Memos is the memoized-level path, in lookup order (materialized runs;
	// empty when the run scanned raw day leaves only).
	Memos []ExplainMemo `json:"memos,omitempty"`
}

// ExplainMergeTree is the integration shape: the serial pairwise scan or
// the fixed chunked reduction tree of cluster.IntegrateParallel.
type ExplainMergeTree struct {
	Parallel bool `json:"parallel"`
	Workers  int  `json:"workers,omitempty"`
	// ChunkSize is the fixed leaf width (parallel only).
	ChunkSize int `json:"chunk_size,omitempty"`
	// Levels is the node count per reduction level, leaves first (parallel
	// only; nil when the input short-circuits).
	Levels []int `json:"levels,omitempty"`
	Inputs int   `json:"inputs"`
	Macros int   `json:"macros"`
}

// ExplainVerdict is the significance filter applied to one macro-cluster.
type ExplainVerdict struct {
	Cluster     uint64  `json:"cluster"`
	Severity    float64 `json:"severity"`
	Significant bool    `json:"significant"`
}

// ExplainSignificance is the final filter: every macro's actual severity
// against the bound. Verdicts follow integration output order, capped at
// explainVerdictCap entries; the counts are exact.
type ExplainSignificance struct {
	Bound       float64          `json:"bound"`
	Macros      int              `json:"macros"`
	Significant int              `json:"significant"`
	Verdicts    []ExplainVerdict `json:"verdicts"`
	Truncated   bool             `json:"truncated,omitempty"`
}

type explainKey struct{}

// WithExplain arms ctx to collect an Explain for the next engine run on
// this context and returns the record, which is filled in place by the run.
// The context also carries a memo sink so forest lookups report their
// hit/miss path. One record collects one run: arm a fresh context per
// query. Collection is not synchronized — use the returned record only
// after the run returns.
func WithExplain(ctx context.Context) (context.Context, *Explain) {
	exp := &Explain{}
	ctx = context.WithValue(ctx, explainKey{}, exp)
	ctx = obs.WithMemoSink(ctx, func(ev obs.MemoEvent) {
		exp.Forest.Memos = append(exp.Forest.Memos, ExplainMemo{
			Level: ev.Level, Index: ev.Index, Hit: ev.Hit, Version: ev.Version,
		})
	})
	return ctx, exp
}

// ExplainFromContext returns the armed record, or nil.
func ExplainFromContext(ctx context.Context) *Explain {
	exp, _ := ctx.Value(explainKey{}).(*Explain)
	return exp
}

// reset clears a record for (re)collection, keeping allocated slices out of
// the way of stale reads. Nil-safe.
func (e *Explain) reset() {
	if e == nil {
		return
	}
	*e = Explain{}
}

// begin records the question. Nil-safe.
func (e *Explain) begin(q Query, s Strategy, sensors int) {
	if e == nil {
		return
	}
	e.Strategy = s.String()
	e.Query = ExplainQuery{
		Regions:    len(q.Regions),
		Sensors:    sensors,
		FromWindow: int64(q.Time.From),
		ToWindow:   int64(q.Time.To),
		Windows:    q.Time.Len(),
		DeltaS:     q.DeltaS,
	}
}

// setBound records the significance arithmetic. Nil-safe.
func (e *Explain) setBound(deltaS float64, lengthT, sensors int, bound float64) {
	if e == nil {
		return
	}
	e.Threshold = ExplainThreshold{DeltaS: deltaS, LengthT: lengthT, Sensors: sensors, Bound: bound}
	e.Significance.Bound = bound
}

// setDayBound records Pru's day-scale pruning bound. Nil-safe.
func (e *Explain) setDayBound(bound float64) {
	if e == nil {
		return
	}
	e.Threshold.DayBound = &bound
}

// stageStart returns the stage clock origin — the zero time when explain is
// off, keeping the disabled path clock-free.
func (e *Explain) stageStart() time.Time {
	if e == nil {
		return time.Time{}
	}
	return time.Now()
}

// stageEnd appends one finished stage. Nil-safe.
func (e *Explain) stageEnd(start time.Time, name string, in, out int) {
	if e == nil {
		return
	}
	e.Stages = append(e.Stages, ExplainStage{
		Name: name, In: in, Out: out, DurationNS: int64(time.Since(start)),
	})
}

// setCandidates records the pruning summary. Nil-safe.
func (e *Explain) setCandidates(scanned, kept int) {
	if e == nil {
		return
	}
	e.Candidates = ExplainCandidates{Scanned: scanned, Pruned: scanned - kept, Kept: kept}
}

// setRedZones records Gui's consulted red zones. Nil-safe. zones must be in
// the deterministic ascending order GuidedRedZones returns.
func (e *Explain) setRedZones(zones []int) {
	if e == nil {
		return
	}
	rz := &ExplainRedZones{Count: len(zones)}
	if len(zones) > explainRedZoneCap {
		rz.Regions = zones[:explainRedZoneCap]
		rz.Truncated = true
	} else {
		rz.Regions = zones
	}
	e.RedZones = rz
}

// setScatter records a sharded run's fan-out. Nil-safe. Shard results arrive
// in scatter order, which is stable across runs.
func (e *Explain) setScatter(info ScatterInfo, shards []ShardResult) {
	if e == nil {
		return
	}
	sc := &ExplainScatter{
		Shards:  info.Shards,
		Failed:  info.Failed,
		Partial: len(info.Failed) > 0,
	}
	sc.PerShard = make([]ExplainShard, len(shards))
	for i, s := range shards {
		sc.PerShard[i] = ExplainShard{Name: s.Shard, Micros: len(s.Candidates)}
	}
	e.Scatter = sc
}

// setForestVersion ties the record to a forest state. Nil-safe.
func (e *Explain) setForestVersion(v uint64) {
	if e == nil {
		return
	}
	e.Forest.Version = v
}

// setMergeTree records the integration shape. Nil-safe.
func (e *Explain) setMergeTree(workers, inputs, macros int) {
	if e == nil {
		return
	}
	mt := ExplainMergeTree{Inputs: inputs, Macros: macros}
	if workers != 0 {
		mt.Parallel = true
		mt.Workers = workers
		mt.ChunkSize = cluster.IntegrateChunkSize
		mt.Levels = cluster.MergeTreeWidths(inputs)
	}
	e.MergeTree = mt
}

// addVerdict records one macro-cluster's significance check. Nil-safe.
func (e *Explain) addVerdict(id uint64, severity float64, significant bool) {
	if e == nil {
		return
	}
	e.Significance.Macros++
	if significant {
		e.Significance.Significant++
	}
	if len(e.Significance.Verdicts) >= explainVerdictCap {
		e.Significance.Truncated = true
		return
	}
	e.Significance.Verdicts = append(e.Significance.Verdicts, ExplainVerdict{
		Cluster: id, Severity: severity, Significant: significant,
	})
}

// finish stamps the total elapsed time. Nil-safe.
func (e *Explain) finish(elapsed time.Duration) {
	if e == nil {
		return
	}
	e.ElapsedNS = int64(elapsed)
}

// Canonical returns a deep copy with every run-unique field normalized: all
// timings zeroed, and verdict cluster IDs replaced by their output ordinal
// (macro-clusters born in integration draw fresh IDs from the shared
// generator each run, so the raw IDs are unique per run by design). The
// result's JSON is byte-identical across two runs of the same query over
// the same state — the determinism golden test asserts exactly this.
//
//atyplint:deterministic
func (e *Explain) Canonical() *Explain {
	if e == nil {
		return nil
	}
	out := *e
	out.ElapsedNS = 0
	out.Stages = make([]ExplainStage, len(e.Stages))
	for i, st := range e.Stages {
		st.DurationNS = 0
		out.Stages[i] = st
	}
	out.Significance.Verdicts = make([]ExplainVerdict, len(e.Significance.Verdicts))
	for i, v := range e.Significance.Verdicts {
		v.Cluster = uint64(i)
		out.Significance.Verdicts[i] = v
	}
	// Remaining slices are immutable after the run; sharing them keeps
	// Canonical cheap.
	return &out
}

// JSON marshals the record, indented, with a trailing newline.
func (e *Explain) JSON() ([]byte, error) {
	data, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Text renders the record as the human-readable table cmd/atypquery
// -explain prints.
func (e *Explain) Text() string {
	if e == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "EXPLAIN %s\n", e.Strategy)
	fmt.Fprintf(&b, "  query        %d regions, %d sensors, windows [%d, %d) (%d windows), δs=%g\n",
		e.Query.Regions, e.Query.Sensors, e.Query.FromWindow, e.Query.ToWindow, e.Query.Windows, e.Query.DeltaS)
	fmt.Fprintf(&b, "  bound        δs·length(T)·N = %g · %d · %d = %.3f severity-min\n",
		e.Threshold.DeltaS, e.Threshold.LengthT, e.Threshold.Sensors, e.Threshold.Bound)
	if e.Threshold.DayBound != nil {
		fmt.Fprintf(&b, "  day bound    %.3f (Pru prunes micro-clusters below this at day scale)\n", *e.Threshold.DayBound)
	}
	fmt.Fprintf(&b, "  candidates   %d scanned, %d pruned, %d integrated\n",
		e.Candidates.Scanned, e.Candidates.Pruned, e.Candidates.Kept)
	if e.RedZones != nil {
		fmt.Fprintf(&b, "  red zones    %d regions pass the bound: %v", e.RedZones.Count, e.RedZones.Regions)
		if e.RedZones.Truncated {
			fmt.Fprintf(&b, " (+%d more)", e.RedZones.Count-len(e.RedZones.Regions))
		}
		b.WriteByte('\n')
	}
	if e.Scatter != nil {
		fmt.Fprintf(&b, "  scatter      %d shards:", e.Scatter.Shards)
		for _, s := range e.Scatter.PerShard {
			fmt.Fprintf(&b, " %s=%d", s.Name, s.Micros)
		}
		if e.Scatter.Partial {
			fmt.Fprintf(&b, " (PARTIAL; failed: %v)", e.Scatter.Failed)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "  forest       version %d", e.Forest.Version)
	if len(e.Forest.Memos) > 0 {
		hits := 0
		for _, m := range e.Forest.Memos {
			if m.Hit {
				hits++
			}
		}
		fmt.Fprintf(&b, "; memo path %d lookups (%d hit / %d miss):", len(e.Forest.Memos), hits, len(e.Forest.Memos)-hits)
		for _, m := range e.Forest.Memos {
			verb := "miss"
			if m.Hit {
				verb = "hit"
			}
			fmt.Fprintf(&b, " %s[%d]=%s@v%d", m.Level, m.Index, verb, m.Version)
		}
	}
	b.WriteByte('\n')
	if e.MergeTree.Parallel {
		fmt.Fprintf(&b, "  merge tree   parallel ×%d workers, chunk %d, levels %v: %d inputs → %d macros\n",
			e.MergeTree.Workers, e.MergeTree.ChunkSize, e.MergeTree.Levels, e.MergeTree.Inputs, e.MergeTree.Macros)
	} else {
		fmt.Fprintf(&b, "  merge tree   serial pairwise scan: %d inputs → %d macros\n",
			e.MergeTree.Inputs, e.MergeTree.Macros)
	}
	fmt.Fprintf(&b, "  significance %d of %d macros pass bound %.3f\n",
		e.Significance.Significant, e.Significance.Macros, e.Significance.Bound)
	for _, v := range e.Significance.Verdicts {
		mark := "  ✗"
		if v.Significant {
			mark = "  ✓"
		}
		fmt.Fprintf(&b, "  %s cluster %-8d severity %10.3f\n", mark, v.Cluster, v.Severity)
	}
	if e.Significance.Truncated {
		fmt.Fprintf(&b, "    … %d more verdicts elided\n", e.Significance.Macros-len(e.Significance.Verdicts))
	}
	fmt.Fprintf(&b, "  stages      ")
	for _, st := range e.Stages {
		fmt.Fprintf(&b, " %s %s (%d→%d)", st.Name, time.Duration(st.DurationNS).Round(time.Microsecond), st.In, st.Out)
	}
	fmt.Fprintf(&b, "\n  elapsed      %s\n", time.Duration(e.ElapsedNS).Round(time.Microsecond))
	return b.String()
}
