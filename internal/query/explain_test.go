package query

import (
	"bytes"
	"context"
	"testing"
	"time"

	"github.com/cpskit/atypical/internal/cluster"
	"github.com/cpskit/atypical/internal/obs"
)

// TestExplainDeterminism is the golden check of the EXPLAIN contract: two
// identical queries over the same forest state produce byte-identical
// canonical Explain JSON, for every strategy and for both worker modes.
func TestExplainDeterminism(t *testing.T) {
	e, spec := pipeline(t, 200, 14)
	q := CityQuery(e.Net, spec, 0, 14, 0.05)
	for _, workers := range []int{0, 4} {
		e.Workers = workers
		for _, s := range []Strategy{All, Pru, Gui} {
			var payloads [][]byte
			for run := 0; run < 2; run++ {
				ctx, exp := WithExplain(context.Background())
				if _, err := e.RunCtx(ctx, q, s); err != nil {
					t.Fatal(err)
				}
				data, err := exp.Canonical().JSON()
				if err != nil {
					t.Fatal(err)
				}
				payloads = append(payloads, data)
			}
			if !bytes.Equal(payloads[0], payloads[1]) {
				t.Errorf("workers=%d %v: canonical Explain JSON differs between identical runs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s",
					workers, s, payloads[0], payloads[1])
			}
		}
	}
}

// TestExplainContents checks the record tells the truth about the run it
// observed: strategy label, bound arithmetic, candidate accounting, merge
// tree shape, and significance verdicts all agree with the Result.
func TestExplainContents(t *testing.T) {
	e, spec := pipeline(t, 200, 14)
	e.Workers = 4
	q := CityQuery(e.Net, spec, 0, 14, 0.05)

	ctx, exp := WithExplain(context.Background())
	res, err := e.RunCtx(ctx, q, Gui)
	if err != nil {
		t.Fatal(err)
	}

	if exp.Strategy != "Gui" {
		t.Errorf("Strategy = %q", exp.Strategy)
	}
	numSensors := e.sensorsInRegions(q.Regions)
	wantBound := q.DeltaS * float64(q.Time.Len()) * float64(numSensors)
	if exp.Threshold.Bound != wantBound || exp.Threshold.DeltaS != q.DeltaS ||
		exp.Threshold.LengthT != q.Time.Len() || exp.Threshold.Sensors != numSensors {
		t.Errorf("threshold = %+v, want bound %g = %g·%d·%d",
			exp.Threshold, wantBound, q.DeltaS, q.Time.Len(), numSensors)
	}
	if exp.Candidates.Scanned != res.CandidateMicros || exp.Candidates.Kept != res.InputMicros ||
		exp.Candidates.Pruned != res.CandidateMicros-res.InputMicros {
		t.Errorf("candidates = %+v vs result scanned=%d kept=%d", exp.Candidates, res.CandidateMicros, res.InputMicros)
	}
	if exp.RedZones == nil || exp.RedZones.Count != res.RedZones {
		t.Errorf("red zones = %+v, want count %d", exp.RedZones, res.RedZones)
	}
	if !exp.MergeTree.Parallel || exp.MergeTree.Workers != 4 ||
		exp.MergeTree.ChunkSize != cluster.IntegrateChunkSize ||
		exp.MergeTree.Inputs != res.InputMicros || exp.MergeTree.Macros != len(res.Macros) {
		t.Errorf("merge tree = %+v", exp.MergeTree)
	}
	if want := cluster.MergeTreeWidths(res.InputMicros); len(want) != len(exp.MergeTree.Levels) {
		t.Errorf("merge tree levels = %v, want %v", exp.MergeTree.Levels, want)
	}
	if exp.Significance.Macros != len(res.Macros) || exp.Significance.Significant != len(res.Significant) {
		t.Errorf("significance = %+v vs result macros=%d significant=%d",
			exp.Significance, len(res.Macros), len(res.Significant))
	}
	for _, v := range exp.Significance.Verdicts {
		if v.Significant != (v.Severity > exp.Significance.Bound) {
			t.Errorf("verdict %+v inconsistent with bound %g", v, exp.Significance.Bound)
		}
	}
	var stages []string
	for _, st := range exp.Stages {
		stages = append(stages, st.Name)
	}
	want := []string{"candidates", "redzones", "guided_filter", "integrate", "significance"}
	if len(stages) != len(want) {
		t.Fatalf("stages = %v, want %v", stages, want)
	}
	for i := range want {
		if stages[i] != want[i] {
			t.Errorf("stage[%d] = %q, want %q", i, stages[i], want[i])
		}
	}
	if exp.ElapsedNS <= 0 {
		t.Error("elapsed not stamped")
	}
	if exp.Text() == "" {
		t.Error("Text() empty")
	}
	if exp.Threshold.DayBound != nil {
		t.Error("day bound set on a Gui run")
	}

	// Pru records the day-scale pruning bound.
	ctx, exp = WithExplain(context.Background())
	if _, err := e.RunCtx(ctx, q, Pru); err != nil {
		t.Fatal(err)
	}
	if exp.Threshold.DayBound == nil {
		t.Error("Pru run missing day bound")
	} else if want := float64(cluster.SignificanceBound(q.DeltaS, spec.PerDay(), numSensors)); *exp.Threshold.DayBound != want {
		t.Errorf("day bound = %g, want %g", *exp.Threshold.DayBound, want)
	}
}

// TestExplainMaterializedMemoPath checks the forest memo hit/miss path flows
// into the record with node versions, and that warmed runs stay canonical.
func TestExplainMaterializedMemoPath(t *testing.T) {
	e, spec := pipeline(t, 200, 14)
	q := CityQuery(e.Net, spec, 0, 14, 0.05)

	ctx, exp := WithExplain(context.Background())
	if _, err := e.RunMaterializedCtx(ctx, q); err != nil {
		t.Fatal(err)
	}
	if len(exp.Forest.Memos) == 0 {
		t.Fatal("cold materialized run recorded no memo lookups")
	}
	if exp.Forest.Memos[0].Hit {
		t.Error("first lookup on a cold forest reported a hit")
	}
	for _, m := range exp.Forest.Memos {
		if m.Level != "week" {
			t.Errorf("memo level = %q, want week", m.Level)
		}
		if m.Version != exp.Forest.Version {
			t.Errorf("memo version %d != forest version %d", m.Version, exp.Forest.Version)
		}
	}

	// Warmed runs are all hits and byte-identical canonically.
	var payloads [][]byte
	for run := 0; run < 2; run++ {
		ctx, exp := WithExplain(context.Background())
		if _, err := e.RunMaterializedCtx(ctx, q); err != nil {
			t.Fatal(err)
		}
		for _, m := range exp.Forest.Memos {
			if !m.Hit {
				t.Errorf("warmed lookup %+v missed", m)
			}
		}
		data, err := exp.Canonical().JSON()
		if err != nil {
			t.Fatal(err)
		}
		payloads = append(payloads, data)
	}
	if !bytes.Equal(payloads[0], payloads[1]) {
		t.Errorf("warmed materialized canonical Explain differs:\n%s\nvs\n%s", payloads[0], payloads[1])
	}
}

// TestExplainDoesNotChangeAnswer runs the same query with and without an
// armed Explain and compares everything about the answer that is stable
// across runs (IDs are generator draws, so severities stand in for them).
func TestExplainDoesNotChangeAnswer(t *testing.T) {
	e, spec := pipeline(t, 200, 14)
	q := CityQuery(e.Net, spec, 0, 14, 0.05)
	for _, s := range []Strategy{All, Pru, Gui} {
		plain, err := e.RunCtx(context.Background(), q, s)
		if err != nil {
			t.Fatal(err)
		}
		ctx, _ := WithExplain(context.Background())
		explained, err := e.RunCtx(ctx, q, s)
		if err != nil {
			t.Fatal(err)
		}
		if plain.CandidateMicros != explained.CandidateMicros ||
			plain.InputMicros != explained.InputMicros ||
			plain.RedZones != explained.RedZones ||
			plain.Bound != explained.Bound ||
			len(plain.Macros) != len(explained.Macros) ||
			len(plain.Significant) != len(explained.Significant) {
			t.Fatalf("%v: explain changed the result shape: %+v vs %+v", s, plain, explained)
		}
		for i := range plain.Macros {
			if plain.Macros[i].Severity() != explained.Macros[i].Severity() {
				t.Errorf("%v: macro %d severity %v vs %v", s, i, plain.Macros[i].Severity(), explained.Macros[i].Severity())
			}
		}
	}
}

// TestExplainFromContextNil checks the disabled path: no armed record, nil
// collector, every hook a no-op.
func TestExplainFromContextNil(t *testing.T) {
	if exp := ExplainFromContext(context.Background()); exp != nil {
		t.Fatalf("ExplainFromContext on bare context = %v", exp)
	}
	var exp *Explain
	exp.reset()
	exp.begin(Query{}, All, 0)
	exp.setBound(0, 0, 0, 0)
	exp.setDayBound(0)
	exp.stageEnd(exp.stageStart(), "x", 0, 0)
	exp.setCandidates(0, 0)
	exp.setRedZones(nil)
	exp.setForestVersion(0)
	exp.setMergeTree(0, 0, 0)
	exp.addVerdict(0, 0, false)
	exp.finish(0)
	if exp.Canonical() != nil {
		t.Error("nil Canonical")
	}
	if exp.Text() != "" {
		t.Error("nil Text")
	}
}

// TestSLOBurnRate checks the burn-rate arithmetic: breach fraction over the
// error budget, exported as a gauge alongside the breach counter.
func TestSLOBurnRate(t *testing.T) {
	r := obs.NewRegistry()
	m := NewMetrics(r)
	m.SetSLO(All, SLOTarget{Latency: time.Millisecond, Objective: 0.9})

	fast := &Result{Strategy: All, Elapsed: 100 * time.Microsecond}
	slow := &Result{Strategy: All, Elapsed: 10 * time.Millisecond}
	m.observe(fast, nil)
	snap := r.Snapshot()
	if v, _ := snap.Value("atyp_slo_burn_rate", "strategy", "all"); v != 0 {
		t.Errorf("burn rate after fast query = %v, want 0", v)
	}
	m.observe(slow, nil)
	snap = r.Snapshot()
	// 1 breach / 2 queries over a 0.1 budget → burn rate 5 (up to float
	// rounding of the budget subtraction).
	if v, _ := snap.Value("atyp_slo_burn_rate", "strategy", "all"); v < 5-1e-9 || v > 5+1e-9 {
		t.Errorf("burn rate = %v, want 5", v)
	}
	if v, _ := snap.Value("atyp_slo_breaches_total", "strategy", "all"); v != 1 {
		t.Errorf("breaches = %v, want 1", v)
	}
	if v, _ := snap.Value("atyp_slo_target_seconds", "strategy", "all"); v != 0.001 {
		t.Errorf("target = %v, want 0.001", v)
	}

	// Unconfigured strategies and invalid targets register nothing.
	m.observe(&Result{Strategy: Pru, Elapsed: time.Second}, nil)
	m.SetSLO(Gui, SLOTarget{Latency: -1, Objective: 0.9})
	m.SetSLO(Gui, SLOTarget{Latency: time.Second, Objective: 1.5})
	snap = r.Snapshot()
	if _, ok := snap.Value("atyp_slo_burn_rate", "strategy", "pru"); ok {
		t.Error("pru burn rate registered without SetSLO")
	}
	if _, ok := snap.Value("atyp_slo_burn_rate", "strategy", "gui"); ok {
		t.Error("invalid SLO targets registered series")
	}

	// Nil metrics: every SLO hook is a no-op.
	var nilM *Metrics
	nilM.SetSLO(All, SLOTarget{Latency: time.Second, Objective: 0.9})
	nilM.observe(fast, nil)
}
