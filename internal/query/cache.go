package query

import (
	"container/list"
	"math"
	"strconv"
	"strings"
	"sync"

	"github.com/cpskit/atypical/internal/cluster"
	"github.com/cpskit/atypical/internal/obs"
)

// CanonicalKey is the cache identity of one resolved query: the same
// normalization discipline as Explain.Canonical() — every run-unique field
// (timings, cluster IDs) is absent, and only the fields that pin the answer
// remain: strategy, the half-open window range, the raw δs bits, and the
// region scope. Fields are '|'-separated and regions ','-separated, with
// purely numeric encodings in between, so distinct queries cannot collide
// (FuzzCanonicalKeyCollisionFree drives this).
//
// The region sequence is kept verbatim — not sorted, not deduplicated —
// because the answer is order-sensitive at the bit level: a duplicated
// region changes the sensor count N (and so the significance bound), and
// GuidedRedZones folds district severities in region order, so re-ordering
// could flip a tie. Equivalent scopes still canonicalize in practice: the
// facade resolves whole-city and box scopes to deterministic region
// sequences, so two requests asking the same question produce the same key.
//
//atyplint:deterministic
func CanonicalKey(q Query, s Strategy) string {
	var b strings.Builder
	b.Grow(32 + 8*len(q.Regions))
	b.WriteString(s.String())
	b.WriteByte('|')
	b.WriteString(strconv.FormatInt(int64(q.Time.From), 10))
	b.WriteByte('|')
	b.WriteString(strconv.FormatInt(int64(q.Time.To), 10))
	b.WriteByte('|')
	b.WriteString(strconv.FormatUint(math.Float64bits(q.DeltaS), 16))
	b.WriteByte('|')
	for i, r := range q.Regions {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatInt(int64(r), 10))
	}
	return b.String()
}

// AnswerCache is an LRU over finished query results, keyed by CanonicalKey
// and stamped with the pair of state counters an answer depends on: the
// forest's write-version counter and the severity index's mutation
// generation. An entry stored at (v, g) answers lookups only while both
// counters still read (v, g), so any AppendDay or severity write
// invalidates every prior answer atomically — no explicit flush is needed
// on ingest. The severity stamp closes the window the forest version alone
// leaves open: ingest bumps the forest version before the severity index
// absorbs the same days, so a Guided query racing that window sees the new
// version with the old severities; its answer is stored under the
// pre-ingest generation and dies the moment the severity write lands,
// instead of replaying as fresh forever. The same stamp retires answers
// computed against a severity state that changed with no forest bump at
// all (RebuildSeverity, Reset). Explicit invalidation (Clear) remains for
// forest swaps, whose fresh version counter may alias old stamps.
//
// Partial results are never stored: a missing shard's absence must not
// outlive the failure. Stored results are copied in and copied out, so
// callers may sort or truncate the slices of a returned Result without
// corrupting the cache.
//
// The zero capacity (and the nil cache) disable every operation, keeping
// the engine's hot path a single nil check when caching is off.
type AnswerCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element

	hits, misses, evictions uint64
	// Metric handles are optional (BindMetrics); nil leaves the cache
	// observable through Stats only.
	hitsC, missesC, evictionsC *obs.Counter
}

// cacheEntry is one stored answer, stamped with the forest version and
// severity generation its run observed before touching any data.
type cacheEntry struct {
	key     string
	version uint64
	sevGen  uint64
	sensors int
	res     Result
}

// NewAnswerCache returns a cache holding up to entries answers; entries <= 0
// returns nil (caching disabled).
func NewAnswerCache(entries int) *AnswerCache {
	if entries <= 0 {
		return nil
	}
	return &AnswerCache{
		cap:   entries,
		ll:    list.New(),
		items: make(map[string]*list.Element, entries),
	}
}

// BindMetrics registers the cache counter families on r and routes future
// hits/misses/evictions to them. Call at wiring time. Nil-safe on both
// sides.
func (c *AnswerCache) BindMetrics(r *obs.Registry) {
	if c == nil || r == nil {
		return
	}
	c.mu.Lock()
	c.hitsC = r.Counter("atyp_query_cache_hits_total",
		"query answers served from the canonical-key answer cache")
	c.missesC = r.Counter("atyp_query_cache_misses_total",
		"query cache lookups that missed (absent or version-stale)")
	c.evictionsC = r.Counter("atyp_query_cache_evictions_total",
		"query cache entries dropped (LRU capacity or version-stale)")
	c.mu.Unlock()
}

// Stats returns the lifetime hit/miss/eviction counts.
func (c *AnswerCache) Stats() (hits, misses, evictions uint64) {
	if c == nil {
		return 0, 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions
}

// Len returns the current entry count.
func (c *AnswerCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Clear drops every entry. Used when the engine's backing state is swapped
// out from under the version counter (LoadForest, severity rebuilds).
func (c *AnswerCache) Clear() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.ll.Init()
	c.items = make(map[string]*list.Element, c.cap)
	c.mu.Unlock()
}

// get returns a copy of the cached answer for key at the given forest
// version and severity generation, or reports a miss. An entry stale on
// either stamp is dropped (counted as an eviction) and reported as a miss.
func (c *AnswerCache) get(key string, version, sevGen uint64) (*Result, int, bool) {
	if c == nil {
		return nil, 0, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.missLocked()
		return nil, 0, false
	}
	ent := el.Value.(*cacheEntry)
	if ent.version != version || ent.sevGen != sevGen {
		c.ll.Remove(el)
		delete(c.items, key)
		c.evictLocked()
		c.missLocked()
		return nil, 0, false
	}
	c.ll.MoveToFront(el)
	c.hits++
	if c.hitsC != nil {
		c.hitsC.Inc()
	}
	res := copyResult(&ent.res)
	return &res, ent.sensors, true
}

// put stores a copy of res under key at the given forest version and
// severity generation, evicting the least recently used entry past
// capacity.
func (c *AnswerCache) put(key string, version, sevGen uint64, sensors int, res *Result) {
	if c == nil || res == nil || res.Partial {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value = &cacheEntry{key: key, version: version, sevGen: sevGen, sensors: sensors, res: copyResult(res)}
		c.ll.MoveToFront(el)
		return
	}
	el := c.ll.PushFront(&cacheEntry{key: key, version: version, sevGen: sevGen, sensors: sensors, res: copyResult(res)})
	c.items[key] = el
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		c.evictLocked()
	}
}

func (c *AnswerCache) missLocked() {
	c.misses++
	if c.missesC != nil {
		c.missesC.Inc()
	}
}

func (c *AnswerCache) evictLocked() {
	c.evictions++
	if c.evictionsC != nil {
		c.evictionsC.Inc()
	}
}

// copyResult clones a Result deep enough for cache safety: the slice
// headers are copied (so callers may reorder or truncate theirs), the
// clusters themselves are shared — they are immutable after a run.
func copyResult(r *Result) Result {
	out := *r
	if r.Macros != nil {
		out.Macros = append([]*cluster.Cluster(nil), r.Macros...)
	}
	if r.Significant != nil {
		out.Significant = append([]*cluster.Cluster(nil), r.Significant...)
	}
	if r.FailedShards != nil {
		out.FailedShards = append([]string(nil), r.FailedShards...)
	}
	return out
}
