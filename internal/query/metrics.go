package query

import (
	"github.com/cpskit/atypical/internal/obs"
)

// Metrics holds the engine's pre-resolved observability handles — one
// resolution at wiring time, lock-free atomic updates on the hot path.
// The nil *Metrics (no observer configured) makes every hook a nil-check
// no-op, and recording touches only the Result the engine produced anyway,
// so observation can never change an answer.
type Metrics struct {
	// Per-strategy series, indexed by Strategy (All, Pru, Gui).
	queries  [3]*obs.Counter
	latency  [3]*obs.Histogram
	scanned  [3]*obs.Counter
	pruned   [3]*obs.Counter
	rejected [3]*obs.Counter
	redzones *obs.Counter
	errors   *obs.Counter
}

// NewMetrics registers the engine's metric families on r and returns the
// resolved handles; a nil registry yields a nil (disabled) Metrics.
func NewMetrics(r *obs.Registry) *Metrics {
	if r == nil {
		return nil
	}
	m := &Metrics{
		redzones: r.Counter("atyp_query_redzones_total",
			"regions passing the significance bound across Gui queries"),
		errors: r.Counter("atyp_query_errors_total",
			"queries returning an error (cancellation, unknown strategy)"),
	}
	// Label values are the lowercase strategy names the CLI flags use.
	names := [3]string{"all", "pru", "gui"}
	for s := All; s <= Gui; s++ {
		label := []string{"strategy", names[s]}
		m.queries[s] = r.Counter("atyp_query_total",
			"analytical queries served", label...)
		m.latency[s] = r.Histogram("atyp_query_seconds",
			"query wall-clock latency in seconds", nil, label...)
		m.scanned[s] = r.Counter("atyp_query_micros_scanned_total",
			"candidate micro-clusters examined before strategy pruning", label...)
		m.pruned[s] = r.Counter("atyp_query_micros_pruned_total",
			"candidate micro-clusters the strategy pruned before integration", label...)
		m.rejected[s] = r.Counter("atyp_query_macros_rejected_total",
			"macro-clusters rejected by the significance bound", label...)
	}
	return m
}

// observe records one finished run. A nil res (error path) counts only the
// error; a strategy outside the known range records nothing per-strategy.
func (m *Metrics) observe(res *Result, err error) {
	if m == nil {
		return
	}
	if err != nil {
		m.errors.Inc()
		return
	}
	s := res.Strategy
	if s > Gui {
		return
	}
	m.queries[s].Inc()
	m.latency[s].Observe(res.Elapsed.Seconds())
	m.scanned[s].Add(int64(res.CandidateMicros))
	m.pruned[s].Add(int64(res.CandidateMicros - res.InputMicros))
	m.rejected[s].Add(int64(len(res.Macros) - len(res.Significant)))
	if s == Gui {
		m.redzones.Add(int64(res.RedZones))
	}
}
