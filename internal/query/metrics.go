package query

import (
	"sync/atomic"
	"time"

	"github.com/cpskit/atypical/internal/obs"
)

// strategyLabels are the lowercase strategy names the CLI flags and metric
// labels use, indexed by Strategy.
var strategyLabels = [3]string{"all", "pru", "gui"}

// Metrics holds the engine's pre-resolved observability handles — one
// resolution at wiring time, lock-free atomic updates on the hot path.
// The nil *Metrics (no observer configured) makes every hook a nil-check
// no-op, and recording touches only the Result the engine produced anyway,
// so observation can never change an answer.
type Metrics struct {
	// Per-strategy series, indexed by Strategy (All, Pru, Gui).
	queries  [3]*obs.Counter
	latency  [3]*obs.Histogram
	scanned  [3]*obs.Counter
	pruned   [3]*obs.Counter
	rejected [3]*obs.Counter
	redzones *obs.Counter
	errors   *obs.Counter
	// reg is kept so SLO families register lazily at SetSLO time — an SLO
	// that was never configured leaves no empty series on /metrics.
	reg *obs.Registry
	slo [3]*sloState
}

// SLOTarget is a latency service-level objective for one strategy: at least
// Objective of queries should finish within Latency.
type SLOTarget struct {
	Latency   time.Duration
	Objective float64 // fraction in (0, 1), e.g. 0.99
}

// sloState tracks one strategy's objective. Counters are process-lifetime;
// the burn rate is the classic SRE ratio (observed breach fraction over the
// error budget 1-objective): 1.0 means burning the budget exactly as fast
// as allowed, above 1.0 the objective will be missed.
type sloState struct {
	target   SLOTarget
	total    atomic.Int64
	breaches atomic.Int64
	breachC  *obs.Counter
	burn     *obs.Gauge
}

// NewMetrics registers the engine's metric families on r and returns the
// resolved handles; a nil registry yields a nil (disabled) Metrics.
func NewMetrics(r *obs.Registry) *Metrics {
	if r == nil {
		return nil
	}
	m := &Metrics{
		redzones: r.Counter("atyp_query_redzones_total",
			"regions passing the significance bound across Gui queries"),
		errors: r.Counter("atyp_query_errors_total",
			"queries returning an error (cancellation, unknown strategy)"),
	}
	m.reg = r
	for s := All; s <= Gui; s++ {
		label := []string{"strategy", strategyLabels[s]}
		m.queries[s] = r.Counter("atyp_query_total",
			"analytical queries served", label...)
		m.latency[s] = r.Histogram("atyp_query_seconds",
			"query wall-clock latency in seconds", nil, label...)
		m.scanned[s] = r.Counter("atyp_query_micros_scanned_total",
			"candidate micro-clusters examined before strategy pruning", label...)
		m.pruned[s] = r.Counter("atyp_query_micros_pruned_total",
			"candidate micro-clusters the strategy pruned before integration", label...)
		m.rejected[s] = r.Counter("atyp_query_macros_rejected_total",
			"macro-clusters rejected by the significance bound", label...)
	}
	return m
}

// SetSLO installs a latency objective for one strategy, registering the
// atyp_slo_* families on the metrics' registry. Call at wiring time, before
// the engine serves queries — installation is not synchronized against
// observe. Invalid targets (non-positive latency, objective outside (0,1))
// and out-of-range strategies are ignored. Nil-safe.
func (m *Metrics) SetSLO(s Strategy, t SLOTarget) {
	if m == nil || s > Gui || t.Latency <= 0 || t.Objective <= 0 || t.Objective >= 1 {
		return
	}
	label := []string{"strategy", strategyLabels[s]}
	st := &sloState{
		target: t,
		breachC: m.reg.Counter("atyp_slo_breaches_total",
			"queries exceeding their strategy's SLO latency target", label...),
		burn: m.reg.Gauge("atyp_slo_burn_rate",
			"error-budget burn rate: breach fraction over (1-objective); >1 means the objective is being missed", label...),
	}
	m.reg.Gauge("atyp_slo_target_seconds",
		"configured SLO latency target in seconds", label...).Set(t.Latency.Seconds())
	m.reg.Gauge("atyp_slo_objective",
		"configured SLO objective fraction", label...).Set(t.Objective)
	m.slo[s] = st
}

// SLOVerdict reports how a run of the given strategy and elapsed time fares
// against the configured latency objective. armed is false when no SLO is
// installed for the strategy (or m is nil); the flight recorder uses it to
// stamp per-query SLO verdicts onto wide events.
func (m *Metrics) SLOVerdict(s Strategy, elapsed time.Duration) (target time.Duration, met, armed bool) {
	if m == nil || s > Gui {
		return 0, false, false
	}
	slo := m.slo[s]
	if slo == nil {
		return 0, false, false
	}
	return slo.target.Latency, elapsed <= slo.target.Latency, true
}

// observe records one finished run. A nil res (error path) counts only the
// error; a strategy outside the known range records nothing per-strategy.
func (m *Metrics) observe(res *Result, err error) {
	if m == nil {
		return
	}
	if err != nil {
		m.errors.Inc()
		return
	}
	s := res.Strategy
	if s > Gui {
		return
	}
	m.queries[s].Inc()
	m.latency[s].Observe(res.Elapsed.Seconds())
	m.scanned[s].Add(int64(res.CandidateMicros))
	m.pruned[s].Add(int64(res.CandidateMicros - res.InputMicros))
	m.rejected[s].Add(int64(len(res.Macros) - len(res.Significant)))
	if s == Gui {
		m.redzones.Add(int64(res.RedZones))
	}
	if slo := m.slo[s]; slo != nil {
		total := slo.total.Add(1)
		breaches := slo.breaches.Load()
		if res.Elapsed > slo.target.Latency {
			breaches = slo.breaches.Add(1)
			slo.breachC.Inc()
		}
		// Objective is validated in SetSLO, so the budget is positive.
		slo.burn.Set(float64(breaches) / float64(total) / (1 - slo.target.Objective))
	}
}
