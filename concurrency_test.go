package atypical

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
)

// buildSystem constructs a system with the given options and ingests the
// deterministic first generated month.
func buildSystem(t *testing.T, options ...Option) *System {
	t.Helper()
	sys, err := NewSystem(testConfig(), options...)
	if err != nil {
		t.Fatal(err)
	}
	sys.Ingest(sys.GenerateMonth(0).Atypical)
	return sys
}

// mustRun executes one request through Run — the single query entry point —
// failing the test on any error.
func mustRun(t *testing.T, sys *System, req QueryRequest) *Report {
	t.Helper()
	res, err := sys.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	return res.Report
}

// Parallel ingestion must be byte-identical to the legacy serial pipeline:
// block-reserved cluster IDs and day-sharded severity accumulation make the
// worker fan-out invisible, down to rendered report text.
func TestParallelIngestByteIdenticalToSerial(t *testing.T) {
	want := renderRuns(t, buildSystem(t, WithWorkers(0)), nil)
	if want == "" {
		t.Fatal("serial system rendered nothing; byte-identity check is vacuous")
	}
	for _, workers := range []int{1, 2, 4, -1} {
		// WithWorkers alone must suffice: queries stay on the serial path
		// unless WithQueryWorkers opts in, so only ingestion parallelism
		// varies here.
		got := renderRuns(t, buildSystem(t, WithWorkers(workers)), nil)
		if got != want {
			t.Fatalf("workers=%d ingest diverged from serial:\n%s", workers, diffAt(got, want))
		}
	}
}

// The parallel query path's output must not depend on the worker count: the
// merge tree's shape is fixed, so every worker count (including the
// GOMAXPROCS-derived one) renders the same bytes.
func TestParallelQueryWorkerCountIndependent(t *testing.T) {
	want := renderRuns(t, buildSystem(t, WithWorkers(4), WithQueryWorkers(1)), nil)
	for _, qw := range []int{2, 8, -1} {
		got := renderRuns(t, buildSystem(t, WithWorkers(4), WithQueryWorkers(qw)), nil)
		if got != want {
			t.Fatalf("query workers=%d diverged from 1 worker:\n%s", qw, diffAt(got, want))
		}
	}
}

// GOMAXPROCS must not select an algorithm or reorder output: the full
// build-and-query pipeline renders identical bytes at 1 and 8 procs.
func TestPipelineByteIdenticalAcrossGOMAXPROCS(t *testing.T) {
	render := func(procs int) string {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		return renderRuns(t, buildSystem(t, WithWorkers(4), WithQueryWorkers(4)), nil)
	}
	at1, at8 := render(1), render(8)
	if at1 != at8 {
		t.Fatalf("pipeline output depends on GOMAXPROCS:\n%s", diffAt(at1, at8))
	}
}

// Queries run while ingestion extends the forest; the race detector is the
// oracle, and queries must see a consistent snapshot throughout.
func TestConcurrentIngestAndQuery(t *testing.T) {
	sys, err := NewSystem(testConfig(), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	months := []*RecordSet{
		sys.GenerateMonth(0).Atypical,
		sys.GenerateMonth(1).Atypical,
		sys.GenerateMonth(2).Atypical,
	}
	sys.Ingest(months[0])

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, strat := range []Strategy{IntegrateAll, Pruned, Guided} {
					if _, err := sys.Run(context.Background(), QueryRequest{Days: 7, Strategy: strat}); err != nil {
						t.Errorf("query during ingest: %v", err)
						return
					}
				}
			}
		}()
	}
	for _, m := range months[1:] {
		if err := sys.IngestCtx(context.Background(), m); err != nil {
			t.Errorf("ingest: %v", err)
		}
	}
	close(stop)
	wg.Wait()

	// After the storm the forest holds all three months.
	if got, want := sys.Forest().Stats().Days, 3*testConfig().DaysPerMonth; got != want {
		t.Fatalf("days after concurrent ingest = %d, want %d", got, want)
	}
}

func TestIngestCtxCancellation(t *testing.T) {
	sys, err := NewSystem(testConfig(), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	ds := sys.GenerateMonth(0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := sys.IngestCtx(ctx, ds.Atypical); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled IngestCtx error = %v, want context.Canceled", err)
	}
	if got := sys.Forest().Stats().Days; got != 0 {
		t.Fatalf("cancelled ingest materialized %d days", got)
	}
}

func TestQueryCtxCancellation(t *testing.T) {
	sys := buildSystem(t, WithWorkers(2), WithQueryWorkers(2))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sys.Run(ctx, QueryRequest{Days: 7}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Run error = %v, want context.Canceled", err)
	}
	if _, err := sys.IngestMonthsCtx(ctx, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled IngestMonthsCtx error = %v, want context.Canceled", err)
	}
}

// diffAt locates the first byte where two renderings diverge.
func diffAt(a, b string) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			lo := i - 60
			if lo < 0 {
				lo = 0
			}
			return fmt.Sprintf("first difference at byte %d:\n a: …%q\n b: …%q", i, a[lo:i+20], b[lo:i+20])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d", len(a), len(b))
}
