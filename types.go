package atypical

import (
	"github.com/cpskit/atypical/internal/cluster"
	"github.com/cpskit/atypical/internal/cps"
	"github.com/cpskit/atypical/internal/gen"
	"github.com/cpskit/atypical/internal/geo"
	"github.com/cpskit/atypical/internal/query"
	"github.com/cpskit/atypical/internal/traffic"
)

// Re-exported core types: the implementation lives in internal packages; the
// aliases below are the public surface downstream code imports.

// SensorID identifies a physical sensor.
type SensorID = cps.SensorID

// Window is a discrete time window index.
type Window = cps.Window

// WindowSpec maps window indices to wall-clock intervals.
type WindowSpec = cps.WindowSpec

// Severity is the severity measure f(s, t) — atypical minutes by default.
type Severity = cps.Severity

// Record is one atypical record (sensor, window, severity).
type Record = cps.Record

// Reading is one raw (pre-detection) sensor reading.
type Reading = cps.Reading

// RecordSet is a canonical collection of atypical records.
type RecordSet = cps.RecordSet

// TimeRange is a half-open window interval.
type TimeRange = cps.TimeRange

// NewRecordSet builds a canonical record set from arbitrary records.
func NewRecordSet(recs []Record) *RecordSet { return cps.NewRecordSet(recs) }

// DayRange returns the window range covering whole days.
func DayRange(ws WindowSpec, firstDay, n int) TimeRange { return cps.DayRange(ws, firstDay, n) }

// Cluster is an atypical cluster: ⟨ID, spatial feature, temporal feature⟩.
type Cluster = cluster.Cluster

// Balance is the similarity balance function g.
type Balance = cluster.Balance

// Similarity computes the paper's Equation 2 cluster similarity.
func Similarity(a, b *Cluster, g Balance) float64 { return cluster.Similarity(a, b, g) }

// Point is a geographic coordinate.
type Point = geo.Point

// BBox is a geographic bounding box.
type BBox = geo.BBox

// RegionID identifies a pre-defined spatial region.
type RegionID = geo.RegionID

// Network is the sensor deployment topology.
type Network = traffic.Network

// Sensor is one physical detector.
type Sensor = traffic.Sensor

// Dataset is one generated month of workload with ground truth.
type Dataset = gen.Dataset

// Event is one injected ground-truth event.
type Event = gen.Event

// Query is an analytical query Q(W, T).
type Query = query.Query

// MicroClusterFromRecords summarizes a set of atypical records into a
// micro-cluster (Definition 4) outside a System pipeline — useful for
// ad-hoc similarity computations and tests. The cluster gets ID 0; clusters
// produced by a System carry unique IDs.
func MicroClusterFromRecords(recs []Record) *Cluster {
	return cluster.FromRecords(0, recs)
}

// Balance functions for Similarity, in the paper's Fig. 21 order.
const (
	BalanceMin        = cluster.Min
	BalanceHarmonic   = cluster.Harmonic
	BalanceGeometric  = cluster.Geometric
	BalanceArithmetic = cluster.Arithmetic
	BalanceMax        = cluster.Max
)

// ParseBalance maps a balance function's name ("min", "harmonic",
// "geometric", "arithmetic", "max") to its constant — the bridge from
// command-line flags and config files to the typed WithBalance option.
func ParseBalance(s string) (Balance, error) { return cluster.ParseBalance(s) }
