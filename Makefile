GO      ?= go
FUZZTIME ?= 10s

CLUSTER_FUZZ = FuzzMergeCommutativity FuzzMergeAssociativity FuzzMicroVsRawAgreement FuzzParallelIntegrateEquivalence
CUBE_FUZZ    = FuzzCubeDeterminism FuzzColumnarSeverityEquivalence
OBS_FUZZ     = FuzzParseSeries FuzzHistogramMerge
QUERY_FUZZ   = FuzzCanonicalKeyCollisionFree
STORAGE_FUZZ = FuzzRecordReaderCorrupt
ROOT_FUZZ    = FuzzShardedQueryEquivalence
SUB_FUZZ     = FuzzStandingQueryEquivalence

.PHONY: all build test race lint lint-json fuzz-smoke crash-matrix bench-quick shard-matrix load-smoke trace-stitch ci

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## lint: curated go vet passes plus the project analyzers (see
## `go run ./cmd/atyplint -list` or the DESIGN.md invariant table —
## kept in sync by TestAnalyzerTableInSync). -time prints per-analyzer
## wall time on stderr. Must exit 0 on every PR.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/atyplint -time ./...

## lint-json: the same findings as machine-readable JSON (including
## suppressed sites, marked), for the CI artifact and problem matcher.
lint-json:
	$(GO) run ./cmd/atyplint -json ./... > atyplint.json

## fuzz-smoke: bounded-budget run of every fuzz target; catches regressions
## in the cluster algebra (Properties 2 and 3) and cube/report determinism
## without open-ended CI time.
fuzz-smoke:
	@for t in $(CLUSTER_FUZZ); do \
		echo "-- fuzz $$t ($(FUZZTIME))"; \
		$(GO) test ./internal/cluster/ -run '^$$' -fuzz "^$$t$$" -fuzztime $(FUZZTIME) || exit 1; \
	done
	@for t in $(CUBE_FUZZ); do \
		echo "-- fuzz $$t ($(FUZZTIME))"; \
		$(GO) test ./internal/cube/ -run '^$$' -fuzz "^$$t$$" -fuzztime $(FUZZTIME) || exit 1; \
	done
	@for t in $(OBS_FUZZ); do \
		echo "-- fuzz $$t ($(FUZZTIME))"; \
		$(GO) test ./internal/obs/ -run '^$$' -fuzz "^$$t$$" -fuzztime $(FUZZTIME) || exit 1; \
	done
	@for t in $(QUERY_FUZZ); do \
		echo "-- fuzz $$t ($(FUZZTIME))"; \
		$(GO) test ./internal/query/ -run '^$$' -fuzz "^$$t$$" -fuzztime $(FUZZTIME) || exit 1; \
	done
	@for t in $(STORAGE_FUZZ); do \
		echo "-- fuzz $$t ($(FUZZTIME))"; \
		$(GO) test ./internal/storage/ -run '^$$' -fuzz "^$$t$$" -fuzztime $(FUZZTIME) || exit 1; \
	done
	@for t in $(SUB_FUZZ); do \
		echo "-- fuzz $$t ($(FUZZTIME))"; \
		$(GO) test ./internal/subscribe/ -run '^$$' -fuzz "^$$t$$" -fuzztime $(FUZZTIME) || exit 1; \
	done
	@for t in $(ROOT_FUZZ); do \
		echo "-- fuzz $$t ($(FUZZTIME))"; \
		$(GO) test . -run '^$$' -fuzz "^$$t$$" -fuzztime $(FUZZTIME) || exit 1; \
	done

## crash-matrix: the fault-injection suite — every mutating filesystem
## operation of a catalog/manifest/forest save is crashed in turn (torn
## writes included) and the recovering reopen must land on the old state,
## the new state, or an explicit quarantine; never a parse error.
crash-matrix:
	$(GO) test ./internal/faultfs/ ./internal/storage/ ./internal/forest/ \
		-run 'Crash|Quarantin|Recovery|Injector|FailRead' -count=1

## bench-quick: one serial-vs-parallel construction measurement, written to
## BENCH_parallel.json alongside a flattened metrics snapshot from an
## instrumented query pass (the observability smoke test). Speedup is only
## meaningful on multi-core hosts; on a single core the two pipelines tie
## (the parallel path never degrades).
bench-quick:
	$(GO) run ./cmd/atypbench -sensors 250 -months 1 -days 14 -parjson BENCH_parallel.json

## load-smoke: the answer-cache load gate — a repeated-query read stream
## (2000 requests cycling 6 shapes) measured once without and once with the
## canonical-keyed cache, written to BENCH_load.json. The gate is the
## within-run cache-off/cache-on p99 ratio (LOADIMPROVE floor): both phases
## share the host and the moment, so the ratio is stable where cross-run
## absolute p99s — microsecond-scale when cached, restored from a possibly
## different runner — are not. The delta vs the previous artifact still
## prints, report-only (-maxregress 0).
LOADIMPROVE ?= 5
load-smoke:
	$(GO) run ./cmd/atypload -sensors 120 -days 7 -requests 2000 -distinct 6 \
		-mix 1 -workers 4 -subscribers 4 -json BENCH_load.json \
		-maxregress 0 -minimprove $(LOADIMPROVE)

## shard-matrix: the tentpole equivalence gate — sharded answers (1/2/8
## shards, in-process and HTTP backends) must render byte-identically to the
## unsharded system, wrappers must stay veneers over Run, and shard loss must
## surface as an explicitly partial answer. -count=1 defeats the test cache
## so the matrix really runs on every invocation.
shard-matrix:
	$(GO) test . ./internal/shard/ \
		-run 'TestShardedQueryByteIdentical|TestBypassShardsByteIdentical|TestShardMatrix|TestShardedPartialFailure|TestWrappersByteIdenticalToRun|TestCoordinatorGatherEqualsUnshardedCandidates|TestHTTPBackendRoundTripAndFailure' \
		-count=1

## trace-stitch: the observability smoke — an in-process 2-shard atypserve
## pair plus a coordinator serve one sharded query, and the coordinator's
## /debug/traces must show the scatter with shard child spans, both shard
## servers must carry continuation spans under the coordinator's trace ID
## (W3C traceparent propagation), and /debug/querylog must hold the matching
## flight-recorder wide event. -count=1 defeats the test cache.
trace-stitch:
	$(GO) test ./cmd/atypserve/ -run TestTraceStitch -count=1

ci: build lint race crash-matrix shard-matrix fuzz-smoke bench-quick load-smoke trace-stitch
